"""Experiment E4 — Figure 5 (bottom): call release, steps 3.1-3.4.

Asserts the flow, verifies the gatekeeper's charging record and the
voice-PDP teardown, and times a complete release.
"""

from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.flows import NodeNames, match_flow, release_flow
from repro.core.network import build_vgprs_network
from repro.gprs.pdp import NSAPI_VOICE


def run_release():
    nw = build_vgprs_network()
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.3)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    scenarios.call_ms_to_terminal(nw, ms, term)
    nw.sim.run(until=nw.sim.now + 2.0)  # hold the call
    since = nw.sim.now
    elapsed = scenarios.hangup_from_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 2.0)  # drain disengages
    return nw, since, elapsed


def test_e04_release_flow(benchmark, report):
    nw, since, elapsed = benchmark.pedantic(run_release, rounds=3, iterations=1)

    flow = release_flow(NodeNames())
    matched = match_flow(nw.sim.trace, flow, since=since)
    assert len(matched) == len(flow)

    rows = [
        (step.step, step.message,
         f"{matched[step.step].src}->{matched[step.step].dst}",
         f"{(matched[step.step].time - since) * 1000:.1f} ms")
        for step in flow
    ]
    report(format_table(
        ["paper step", "message", "hop", "t+"], rows,
        title="E4 / Figure 5 (bottom): call release, steps 3.1-3.4",
    ))

    # Step 3.3: "The GK records the call statistics for charging."
    assert len(nw.gk.call_records) == 1
    cdr = nw.gk.call_records[0]
    assert cdr.complete and cdr.reported_duration_ms >= 1900
    report(format_table(
        ["call_ref", "duration_ms", "bandwidth_kbps"],
        [(cdr.call_ref, cdr.reported_duration_ms, cdr.bandwidth_kbps)],
        title="E4: gatekeeper charging record (step 3.3)",
    ))

    # Step 3.4: the voice context is gone, the signalling context stays.
    ms = nw.mss["MS1"]
    entry = nw.vmsc.ms_table.get(ms.imsi)
    assert not entry.voice_ready and entry.signalling_ready
    assert (ms.imsi, NSAPI_VOICE) not in nw.sgsn.pdp_contexts
    report(f"VERDICT: Figure 5 release reproduced; teardown in "
           f"{elapsed * 1000:.0f} ms, CDR written, voice PDP deactivated, "
           "signalling PDP retained.")
