"""Guard against instrumentation overhead creeping into the kernel.

Compares a fresh pytest-benchmark JSON dump against the recorded
``BENCH_kernel.json`` numbers and fails when a kernel benchmark got
slower than the allowed factor::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro.py -q \\
        -k "event_throughput or event_chain" --benchmark-json=/tmp/b.json
    python benchmarks/check_overhead.py /tmp/b.json --tolerance 1.6

The observability layer (spans, profiler hooks, trace sink) must be
free when disabled: the fast event loop is untouched and the per-entry
sink is one attribute check.  Local regression budget is 5%
(``--tolerance 1.05``); CI shares cores with other jobs, so its default
budget is looser — the guard is for order-of-magnitude mistakes (an
accidentally always-on profiler), not for microbenchmark jitter.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Benchmarks that exercise the bare kernel dispatch loop.
KERNEL_BENCHES = ("test_micro_event_throughput", "test_micro_event_chain")

#: (instrumented, plain) soak pair: the series sampler's overhead is the
#: ratio between the two *fresh* measurements, so this guard needs no
#: recorded baseline and is immune to machine differences.
SERIES_PAIR = ("test_micro_soak_with_series", "test_micro_soak_workload")

#: The canonical voice soak behind ``soak_sim_seconds_per_wall_s``; must
#: match ``bench_to_json.VOICE_SOAK_SIM_SECONDS``.
VOICE_SOAK = "test_micro_soak_voice"
VOICE_SOAK_SIM_SECONDS = 600.0

#: (served, batch) soak pair: serve mode slices the *identical*
#: open-loop workload through ``run_paced`` and publishes a telemetry
#: view per quantum; its overhead over the batch run is a fresh-vs-fresh
#: ratio like the series pair (no recorded baseline,
#: machine-independent).
PACING_PAIR = ("test_micro_soak_served", "test_micro_soak_openloop")

#: (recorded, traced) soak pair: the always-on flight recorder rides
#: the trace sink, so its cost is measured against the *traced* soak —
#: fresh-vs-fresh like the series and pacing pairs.
RECORDER_PAIR = ("test_micro_soak_flight_recorder", "test_micro_soak_traced")


def check(fresh: dict, baseline: dict, tolerance: float) -> list:
    failures = []
    fresh_by_name = {b["name"]: b["stats"] for b in fresh.get("benchmarks", [])}
    base_by_name = baseline.get("benchmarks", {})
    for name in KERNEL_BENCHES:
        stats = fresh_by_name.get(name)
        base = base_by_name.get(name)
        if stats is None or base is None:
            print(f"{name}: skipped (not present in both inputs)")
            continue
        ratio = stats["min"] / base["min_s"]
        verdict = "ok" if ratio <= tolerance else "REGRESSION"
        print(
            f"{name}: baseline {base['min_s']:.5f}s, fresh "
            f"{stats['min']:.5f}s ({ratio:.2f}x, budget {tolerance:.2f}x) "
            f"{verdict}"
        )
        if ratio > tolerance:
            failures.append((name, ratio))
    return failures


def check_series(fresh: dict, tolerance: float) -> list:
    """Guard the time-series sampler's soak overhead: compares the
    instrumented soak against the plain soak from the *same* fresh run
    (fresh-vs-fresh, so no baseline file is involved)."""
    fresh_by_name = {b["name"]: b["stats"] for b in fresh.get("benchmarks", [])}
    with_series, plain = SERIES_PAIR
    a = fresh_by_name.get(with_series)
    b = fresh_by_name.get(plain)
    if a is None or b is None:
        print("series overhead: skipped (soak pair not in input)")
        return []
    ratio = a["min"] / b["min"]
    verdict = "ok" if ratio <= tolerance else "REGRESSION"
    print(
        f"series sampler overhead: plain {b['min']:.5f}s, sampled "
        f"{a['min']:.5f}s ({ratio:.2f}x, budget {tolerance:.2f}x) {verdict}"
    )
    if ratio > tolerance:
        return [("series_sampler_overhead", ratio)]
    return []


def check_pacing(fresh: dict, tolerance: float) -> list:
    """Guard serve-mode overhead: the served soak (run_paced slices +
    one telemetry publish per quantum, rate-0 pacer) against the plain
    batch soak from the *same* fresh run."""
    fresh_by_name = {b["name"]: b["stats"] for b in fresh.get("benchmarks", [])}
    served, plain = PACING_PAIR
    a = fresh_by_name.get(served)
    b = fresh_by_name.get(plain)
    if a is None or b is None:
        print("pacing overhead: skipped (served/plain soak pair not in input)")
        return []
    ratio = a["min"] / b["min"]
    verdict = "ok" if ratio <= tolerance else "REGRESSION"
    print(
        f"serve pacing overhead: plain {b['min']:.5f}s, served "
        f"{a['min']:.5f}s ({ratio:.2f}x, budget {tolerance:.2f}x) {verdict}"
    )
    if ratio > tolerance:
        return [("serve_pacing_overhead", ratio)]
    return []


def check_recorder(fresh: dict, tolerance: float) -> list:
    """Guard the flight recorder's soak overhead: the recorder-armed
    traced soak against the plain traced soak from the *same* fresh run
    (fresh-vs-fresh; ring appends are O(1) and capture never triggers,
    so this bounds the always-on cost)."""
    fresh_by_name = {b["name"]: b["stats"] for b in fresh.get("benchmarks", [])}
    recorded, plain = RECORDER_PAIR
    a = fresh_by_name.get(recorded)
    b = fresh_by_name.get(plain)
    if a is None or b is None:
        print("recorder overhead: skipped (traced soak pair not in input)")
        return []
    ratio = a["min"] / b["min"]
    verdict = "ok" if ratio <= tolerance else "REGRESSION"
    print(
        f"flight recorder overhead: traced {b['min']:.5f}s, recorded "
        f"{a['min']:.5f}s ({ratio:.2f}x, budget {tolerance:.2f}x) {verdict}"
    )
    if ratio > tolerance:
        return [("flight_recorder_overhead", ratio)]
    return []


def check_soak_throughput(fresh: dict, baseline: dict, tolerance: float) -> list:
    """Guard the headline soak throughput: the fresh voice-soak run,
    converted to simulated-seconds-per-wall-second, must not fall more
    than *tolerance* below the recorded
    ``derived.soak_sim_seconds_per_wall_s``."""
    recorded = baseline.get("derived", {}).get("soak_sim_seconds_per_wall_s")
    fresh_by_name = {b["name"]: b["stats"] for b in fresh.get("benchmarks", [])}
    stats = fresh_by_name.get(VOICE_SOAK)
    if recorded is None or stats is None:
        print("soak throughput: skipped (voice soak not in both inputs)")
        return []
    fresh_rate = VOICE_SOAK_SIM_SECONDS / stats["min"]
    floor = recorded / tolerance
    verdict = "ok" if fresh_rate >= floor else "REGRESSION"
    print(
        f"soak throughput: recorded {recorded:.0f} sim-s/wall-s, fresh "
        f"{fresh_rate:.0f} (floor {floor:.0f} at {tolerance:.2f}x budget) "
        f"{verdict}"
    )
    if fresh_rate < floor:
        return [("soak_sim_seconds_per_wall_s", recorded / fresh_rate)]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", help="fresh pytest-benchmark JSON dump")
    parser.add_argument(
        "--baseline",
        default="BENCH_kernel.json",
        help="recorded kernel numbers (default: BENCH_kernel.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.6,
        help="allowed fresh/baseline min-time ratio (default: 1.6)",
    )
    parser.add_argument(
        "--series-tolerance",
        type=float,
        default=1.05,
        help="allowed sampled-soak/plain-soak min-time ratio "
             "(fresh-vs-fresh; default: 1.05)",
    )
    parser.add_argument(
        "--pacing-tolerance",
        type=float,
        default=1.40,
        help="allowed served-soak/batch-soak min-time ratio "
             "(fresh-vs-fresh over the identical open-loop workload; "
             "the served run adds one metrics snapshot per 0.25 s "
             "quantum — measured ~1.25x — hence the default: 1.40)",
    )
    parser.add_argument(
        "--recorder-tolerance",
        type=float,
        default=1.15,
        help="allowed recorder-armed/traced soak min-time ratio "
             "(fresh-vs-fresh; the recorder's deque appends ride the "
             "already-armed trace sink — default: 1.15)",
    )
    parser.add_argument(
        "--soak-tolerance",
        type=float,
        default=1.10,
        help="allowed shortfall factor of fresh voice-soak throughput "
             "below the recorded soak_sim_seconds_per_wall_s "
             "(default: 1.10, i.e. fail on >10%% regression)",
    )
    args = parser.parse_args(argv)

    with open(args.input) as fh:
        fresh = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    failures = check(fresh, baseline, args.tolerance)
    failures += check_series(fresh, args.series_tolerance)
    failures += check_pacing(fresh, args.pacing_tolerance)
    failures += check_recorder(fresh, args.recorder_tolerance)
    failures += check_soak_throughput(fresh, baseline, args.soak_tolerance)
    if failures:
        names = ", ".join(f"{n} ({r:.2f}x)" for n, r in failures)
        print(f"FAILED: kernel overhead above budget: {names}")
        return 1
    print("kernel overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
