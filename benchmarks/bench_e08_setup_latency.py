"""Experiment E8 — §6 "PDP context activation": call-setup latency,
vGPRS vs. the 3G TR 23.923 approach.

The paper's claim: "when a call (either incoming or outgoing) to the MS
arrives, the call path can be quickly established because the PDP
context is already activated ... Clearly, the call setup time is longer
in this [3G TR] approach."

Measured quantity: the **setup-path delay** — from the caller emitting
Q.931 Setup to its delivery at the called side's endpoint.  This
isolates the PDP-context handling the claim is about; radio-side call
procedures (paging, authentication, ciphering, channel assignment) are
common to both architectures and are reported separately by E2-E5.
Swept over the packet-core latency (Gb/Gn/Gi/IP scaled 1x-8x).
"""

from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.baseline_3gtr import build_3gtr_network
from repro.core.network import LatencyProfile, build_vgprs_network

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
TERM1 = "+886222000001"
SWEEP = (1.0, 2.0, 4.0, 8.0)


def _setup_path_delay(nw, place_call):
    t0 = nw.sim.now
    place_call()
    trace = nw.sim.trace
    assert nw.sim.run_until_true(
        lambda: trace.first("Q931_Call_Proceeding") is not None
        and trace.first("Q931_Call_Proceeding").time >= t0,
        timeout=60,
    )
    setups = trace.messages(name="Q931_Setup", since=t0)
    return setups[-1].time - setups[0].time


def vgprs_mt(factor: float) -> float:
    nw = build_vgprs_network(latencies=LatencyProfile().scaled_core(factor))
    ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=5.0)
    term = nw.add_terminal("TERM1", TERM1)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 6.0)  # idle; vGPRS keeps the context
    nw.sim.trace.clear()
    return _setup_path_delay(nw, lambda: term.place_call(ms.msisdn))


def tgtr_mt(factor: float) -> float:
    nw = build_3gtr_network(latencies=LatencyProfile().scaled_core(factor))
    ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=5.0)
    term = nw.add_terminal("TERM1", TERM1)
    nw.sim.run(until=0.5)
    ms.power_on()
    assert nw.sim.run_until_true(lambda: ms.registered, timeout=30)
    nw.sim.run(until=nw.sim.now + 6.0)  # idle; 3G TR tore the context down
    nw.sim.trace.clear()
    return _setup_path_delay(nw, lambda: term.place_call(ms.msisdn))


def vgprs_mo_admission(factor: float) -> float:
    """MO side: time from A_Setup at the VMSC to the ACF returning —
    immediate in vGPRS because the signalling context exists."""
    nw = build_vgprs_network(latencies=LatencyProfile().scaled_core(factor))
    ms = nw.add_ms("MS1", IMSI1, MSISDN1)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 6.0)
    since = nw.sim.now
    scenarios.call_ms_to_terminal(nw, ms, term)
    trace = nw.sim.trace
    a_setup = trace.messages(name="A_Setup", since=since)[0]
    acf = trace.messages(name="RAS_ACF", dst="VMSC", since=since)[0]
    return acf.time - a_setup.time


def tgtr_mo_admission(factor: float) -> float:
    """MO side in 3G TR: PDP activation precedes the ARQ."""
    nw = build_3gtr_network(latencies=LatencyProfile().scaled_core(factor))
    ms = nw.add_ms("MS1", IMSI1, MSISDN1)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
    nw.sim.run(until=0.5)
    ms.power_on()
    assert nw.sim.run_until_true(lambda: ms.registered, timeout=30)
    nw.sim.run(until=nw.sim.now + 6.0)
    since = nw.sim.now
    ms.place_call(term.alias)
    trace = nw.sim.trace
    assert nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=60)
    acf = trace.messages(name="RAS_ACF", since=since)[0]
    return acf.time - since


def test_e08_setup_latency_sweep(benchmark, report):
    benchmark.pedantic(lambda: vgprs_mt(1.0), rounds=3, iterations=1)

    mt_rows = []
    mo_rows = []
    for factor in SWEEP:
        v_mt, t_mt = vgprs_mt(factor), tgtr_mt(factor)
        v_mo, t_mo = vgprs_mo_admission(factor), tgtr_mo_admission(factor)
        mt_rows.append((f"{factor:.0f}x", v_mt * 1000, t_mt * 1000,
                        t_mt / v_mt))
        mo_rows.append((f"{factor:.0f}x", v_mo * 1000, t_mo * 1000,
                        t_mo / v_mo))
        # The paper's shape: 3G TR slower at every point.
        assert t_mt > v_mt
        assert t_mo > v_mo

    # The absolute gap grows with core latency (more RTTs in the 3G TR
    # activation path).
    gaps = [row[2] - row[1] for row in mt_rows]
    assert gaps == sorted(gaps)

    report(format_table(
        ["core latency", "vGPRS ms", "3G TR ms", "ratio"], mt_rows,
        title="E8: MT setup-path delay (caller's Setup -> called endpoint)",
    ))
    report(format_table(
        ["core latency", "vGPRS ms", "3G TR ms", "ratio"], mo_rows,
        title="E8: MO dial-to-admission delay (Setup/dial -> ACF)",
    ))
    report("VERDICT: per-call PDP activation makes 3G TR setup "
           f"{mt_rows[0][3]:.1f}x-{mt_rows[-1][3]:.1f}x slower on the MT "
           "setup path; the gap widens with core latency, matching the "
           "paper's Section-6 argument.")
