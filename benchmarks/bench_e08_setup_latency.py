"""Experiment E8 — §6 "PDP context activation": call-setup latency,
vGPRS vs. the 3G TR 23.923 approach.

The paper's claim: "when a call (either incoming or outgoing) to the MS
arrives, the call path can be quickly established because the PDP
context is already activated ... Clearly, the call setup time is longer
in this [3G TR] approach."

Measured quantity: the **setup-path delay** — from the caller emitting
Q.931 Setup to its delivery at the called side's endpoint.  This
isolates the PDP-context handling the claim is about; radio-side call
procedures (paging, authentication, ciphering, channel assignment) are
common to both architectures and are reported separately by E2-E5.
Swept over the packet-core latency (Gb/Gn/Gi/IP scaled 1x-8x); the
sweep points run through :func:`repro.sim.sweep.run_sweep`, so setting
``REPRO_SWEEP_JOBS`` fans them across worker processes with identical
results.
"""

from repro.analysis.report import format_table
from repro.core.sweeps import setup_latency_point, vgprs_mt
from repro.sim.sweep import run_sweep, sweep_grid

SWEEP = (1.0, 2.0, 4.0, 8.0)


def test_e08_setup_latency_sweep(benchmark, report):
    benchmark.pedantic(lambda: vgprs_mt(1.0), rounds=3, iterations=1)

    results = run_sweep(setup_latency_point, sweep_grid(factor=SWEEP))

    mt_rows = []
    mo_rows = []
    for result in results:
        p = result.value
        factor = p["factor"]
        v_mt, t_mt = p["vgprs_mt"], p["tgtr_mt"]
        v_mo, t_mo = p["vgprs_mo"], p["tgtr_mo"]
        mt_rows.append((f"{factor:.0f}x", v_mt * 1000, t_mt * 1000,
                        t_mt / v_mt))
        mo_rows.append((f"{factor:.0f}x", v_mo * 1000, t_mo * 1000,
                        t_mo / v_mo))
        # The paper's shape: 3G TR slower at every point.
        assert t_mt > v_mt
        assert t_mo > v_mo

    # The absolute gap grows with core latency (more RTTs in the 3G TR
    # activation path).
    gaps = [row[2] - row[1] for row in mt_rows]
    assert gaps == sorted(gaps)

    report(format_table(
        ["core latency", "vGPRS ms", "3G TR ms", "ratio"], mt_rows,
        title="E8: MT setup-path delay (caller's Setup -> called endpoint)",
    ))
    report(format_table(
        ["core latency", "vGPRS ms", "3G TR ms", "ratio"], mo_rows,
        title="E8: MO dial-to-admission delay (Setup/dial -> ACF)",
    ))
    report("VERDICT: per-call PDP activation makes 3G TR setup "
           f"{mt_rows[0][3]:.1f}x-{mt_rows[-1][3]:.1f}x slower on the MT "
           "setup path; the gap widens with core latency, matching the "
           "paper's Section-6 argument.")
