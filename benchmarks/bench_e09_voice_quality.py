"""Experiment E9 — §6 "Real-time communication": air-interface voice
quality under load.

The paper: "vGPRS provides real-time communication ... by using [the]
circuit-switched mechanism in the GSM air interface.  On the other hand,
the 3G TR 23.923 approach is affected by the non-real-time packet
switching nature in the radio interface.  Thus, VoIP with required
quality can not be satisfied."

Measured: mouth-to-ear delay, jitter and the fraction of frames within a
150 ms budget as concurrent calls share one cell, for

* vGPRS: each call gets a dedicated circuit TCH (blocking beyond the
  channel pool, but jitter-free voice);
* 3G TR: all calls share the cell's packet channel (no blocking, but
  queueing delay and jitter grow with load).
"""

from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.baseline_3gtr import build_3gtr_network
from repro.core.network import build_vgprs_network

BUDGET_S = 0.150
TALK_S = 2.0


def vgprs_under_load(num_calls: int, tch_capacity: int = 8):
    nw = build_vgprs_network(tch_capacity=tch_capacity)
    pairs = []
    for i in range(num_calls):
        ms = nw.add_ms(f"MS{i}", f"46692000000100{i}", f"+88693500010{i}")
        term = nw.add_terminal(f"TERM{i}", f"+88622200010{i}", answer_delay=0.2)
        pairs.append((ms, term))
    nw.sim.run(until=0.5)
    connected = 0
    for ms, term in pairs:
        scenarios.register_ms(nw, ms)
        try:
            scenarios.call_ms_to_terminal(nw, ms, term, timeout=10)
            connected += 1
            ms.start_talking(duration=TALK_S)
        except Exception:
            pass  # blocked: no TCH available
    nw.sim.run(until=nw.sim.now + TALK_S + 1.0)
    delays, jitters, within = [], [], []
    for i, (ms, term) in enumerate(pairs):
        m2e = nw.sim.metrics.get_histogram(f"TERM{i}.mouth_to_ear")
        jit = nw.sim.metrics.get_histogram(f"TERM{i}.jitter")
        if m2e is not None and m2e.count:
            delays.append(m2e.mean)
            within.append(m2e.fraction_below(BUDGET_S))
        if jit is not None and jit.count:
            jitters.append(jit.quantile(0.95))
    blocked = nw.sim.metrics.counters("BSC.tch_blocked").get("BSC.tch_blocked", 0)
    return {
        "connected": connected,
        "blocked": blocked,
        "mean_m2e_ms": 1000 * sum(delays) / len(delays) if delays else 0.0,
        "p95_jitter_ms": 1000 * max(jitters) if jitters else 0.0,
        "within_budget": min(within) if within else 0.0,
    }


def tgtr_under_load(num_calls: int, channel_bps: float = 40_000.0):
    nw = build_3gtr_network(packet_channel_bps=channel_bps)
    pairs = []
    for i in range(num_calls):
        ms = nw.add_ms(f"MS{i}", f"46692000000100{i}", f"+88693500010{i}",
                       answer_delay=0.2)
        term = nw.add_terminal(f"TERM{i}", f"+88622200010{i}", answer_delay=0.2)
        pairs.append((ms, term))
    nw.sim.run(until=0.5)
    connected = 0
    for ms, term in pairs:
        ms.power_on()
        nw.sim.run_until_true(lambda m=ms: m.registered, timeout=30)
    nw.sim.run(until=nw.sim.now + 1.0)
    for ms, term in pairs:
        ms.place_call(term.alias)
        if nw.sim.run_until_true(lambda m=ms: m.state == "in-call", timeout=20):
            connected += 1
    for ms, _ in pairs:
        if ms.state == "in-call":
            ms.start_talking(duration=TALK_S)
    nw.sim.run(until=nw.sim.now + TALK_S + 3.0)
    delays, jitters, within = [], [], []
    for i, _ in enumerate(pairs):
        m2e = nw.sim.metrics.get_histogram(f"TERM{i}.mouth_to_ear")
        jit = nw.sim.metrics.get_histogram(f"TERM{i}.jitter")
        if m2e is not None and m2e.count:
            delays.append(m2e.mean)
            within.append(m2e.fraction_below(BUDGET_S))
        if jit is not None and jit.count:
            jitters.append(jit.quantile(0.95))
    return {
        "connected": connected,
        "blocked": 0,
        "mean_m2e_ms": 1000 * sum(delays) / len(delays) if delays else 0.0,
        "p95_jitter_ms": 1000 * max(jitters) if jitters else 0.0,
        "within_budget": min(within) if within else 0.0,
    }


def test_e09_voice_quality(benchmark, report):
    benchmark.pedantic(lambda: vgprs_under_load(1), rounds=1, iterations=1)

    rows = []
    loads = (1, 2, 4, 6)
    v_results = {}
    t_results = {}
    for n in loads:
        v = vgprs_under_load(n)
        t = tgtr_under_load(n)
        v_results[n], t_results[n] = v, t
        rows.append((
            n,
            f"{v['mean_m2e_ms']:.1f}", f"{t['mean_m2e_ms']:.1f}",
            f"{v['p95_jitter_ms']:.2f}", f"{t['p95_jitter_ms']:.2f}",
            f"{v['within_budget'] * 100:.0f}%", f"{t['within_budget'] * 100:.0f}%",
            v["blocked"],
        ))

    report(format_table(
        ["calls/cell", "vGPRS m2e", "3GTR m2e", "vGPRS jit p95",
         "3GTR jit p95", "vGPRS <150ms", "3GTR <150ms", "vGPRS blocked"],
        rows,
        title="E9: voice quality vs. cell load (circuit TCH vs shared "
              "packet channel)",
    ))

    # The paper's shape: the circuit path is load-invariant and
    # jitter-free; the packet path degrades with load.
    assert v_results[1]["p95_jitter_ms"] < 0.01
    assert v_results[6]["p95_jitter_ms"] < 0.01
    assert abs(v_results[6]["mean_m2e_ms"] - v_results[1]["mean_m2e_ms"]) < 1.0
    assert t_results[6]["p95_jitter_ms"] > t_results[1]["p95_jitter_ms"]
    assert t_results[6]["mean_m2e_ms"] > t_results[1]["mean_m2e_ms"]
    assert t_results[6]["within_budget"] < 1.0
    assert all(v_results[n]["within_budget"] == 1.0 for n in loads
               if v_results[n]["connected"])

    # Blocking: push past the TCH pool to show the circuit trade-off.
    overload = vgprs_under_load(10, tch_capacity=4)
    assert overload["blocked"] > 0
    report(format_table(
        ["offered calls", "TCH pool", "connected", "blocked"],
        [(10, 4, overload["connected"], overload["blocked"])],
        title="E9: the circuit approach's own cost — call blocking at "
              "radio capacity",
    ))
    report("VERDICT: circuit air interface keeps voice jitter-free and "
           "load-invariant (at the price of blocking); the 3G TR packet "
           "channel degrades with load — the paper's real-time argument.")
