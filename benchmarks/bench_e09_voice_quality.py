"""Experiment E9 — §6 "Real-time communication": air-interface voice
quality under load.

The paper: "vGPRS provides real-time communication ... by using [the]
circuit-switched mechanism in the GSM air interface.  On the other hand,
the 3G TR 23.923 approach is affected by the non-real-time packet
switching nature in the radio interface.  Thus, VoIP with required
quality can not be satisfied."

Measured: mouth-to-ear delay, jitter and the fraction of frames within a
150 ms budget as concurrent calls share one cell, for

* vGPRS: each call gets a dedicated circuit TCH (blocking beyond the
  channel pool, but jitter-free voice);
* 3G TR: all calls share the cell's packet channel (no blocking, but
  queueing delay and jitter grow with load).

The load sweep runs through :func:`repro.sim.sweep.run_sweep`; set
``REPRO_SWEEP_JOBS`` to evaluate the load points in parallel.
"""

from repro.analysis.report import format_table
from repro.core.sweeps import vgprs_under_load, voice_quality_point
from repro.sim.sweep import run_sweep, sweep_grid

LOADS = (1, 2, 4, 6)


def test_e09_voice_quality(benchmark, report):
    benchmark.pedantic(lambda: vgprs_under_load(1), rounds=1, iterations=1)

    results = run_sweep(voice_quality_point, sweep_grid(num_calls=LOADS))

    rows = []
    v_results = {}
    t_results = {}
    for result in results:
        n = result.value["calls"]
        v = result.value["vgprs"]
        t = result.value["tgtr"]
        v_results[n], t_results[n] = v, t
        rows.append((
            n,
            f"{v['mean_m2e_ms']:.1f}", f"{t['mean_m2e_ms']:.1f}",
            f"{v['p95_jitter_ms']:.2f}", f"{t['p95_jitter_ms']:.2f}",
            f"{v['within_budget'] * 100:.0f}%", f"{t['within_budget'] * 100:.0f}%",
            v["blocked"],
        ))

    report(format_table(
        ["calls/cell", "vGPRS m2e", "3GTR m2e", "vGPRS jit p95",
         "3GTR jit p95", "vGPRS <150ms", "3GTR <150ms", "vGPRS blocked"],
        rows,
        title="E9: voice quality vs. cell load (circuit TCH vs shared "
              "packet channel)",
    ))

    # The paper's shape: the circuit path is load-invariant and
    # jitter-free; the packet path degrades with load.
    assert v_results[1]["p95_jitter_ms"] < 0.01
    assert v_results[6]["p95_jitter_ms"] < 0.01
    assert abs(v_results[6]["mean_m2e_ms"] - v_results[1]["mean_m2e_ms"]) < 1.0
    assert t_results[6]["p95_jitter_ms"] > t_results[1]["p95_jitter_ms"]
    assert t_results[6]["mean_m2e_ms"] > t_results[1]["mean_m2e_ms"]
    assert t_results[6]["within_budget"] < 1.0
    assert all(v_results[n]["within_budget"] == 1.0 for n in LOADS
               if v_results[n]["connected"])

    # Blocking: push past the TCH pool to show the circuit trade-off.
    overload = vgprs_under_load(10, tch_capacity=4)
    assert overload["blocked"] > 0
    report(format_table(
        ["offered calls", "TCH pool", "connected", "blocked"],
        [(10, 4, overload["connected"], overload["blocked"])],
        title="E9: the circuit approach's own cost — call blocking at "
              "radio capacity",
    ))
    report("VERDICT: circuit air interface keeps voice jitter-free and "
           "load-invariant (at the price of blocking); the 3G TR packet "
           "channel degrades with load — the paper's real-time argument.")
