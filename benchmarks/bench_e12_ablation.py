"""Experiment E12 — ablation: the idle-deactivation vGPRS variant.

The paper, §6: "vGPRS registration and call procedures can be easily
modified to deactivate the PDP contexts when the MSs are idle.  However,
this approach may significantly increase the call setup time and is not
considered in the current vGPRS implementation."

This ablation implements exactly that variant (``idle_deactivate_after``
on the VMSC + released-binding retention at the GGSN) and measures what
the paper predicted: setup-path delay rises sharply, in exchange for
zero idle context residency at the SGSN/GGSN.
"""

from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.network import build_vgprs_network

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
TERM1 = "+886222000001"
IDLE_S = 3.0


def _prepare(idle):
    nw = build_vgprs_network(idle_deactivate_after=idle)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=5.0)
    term = nw.add_terminal("TERM1", TERM1)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + IDLE_S + 2.0)  # long idle period
    return nw, ms, term


def mt_setup_path(idle):
    nw, ms, term = _prepare(idle)
    nw.sim.trace.clear()
    t0 = nw.sim.now
    term.place_call(ms.msisdn)
    trace = nw.sim.trace
    assert nw.sim.run_until_true(
        lambda: trace.first("Q931_Call_Proceeding") is not None,
        timeout=60,
    )
    setups = trace.messages(name="Q931_Setup", since=t0)
    residency = nw.sgsn.context_residency()
    return setups[-1].time - setups[0].time, residency


def mo_dial_to_admission(idle):
    nw, ms, term = _prepare(idle)
    term.answer_delay = 0.3
    since = nw.sim.now
    scenarios.call_ms_to_terminal(nw, ms, term)
    trace = nw.sim.trace
    a_setup = trace.messages(name="A_Setup", since=since)[0]
    acf = trace.messages(name="RAS_ACF", dst="VMSC", since=since)[0]
    return acf.time - a_setup.time


def test_e12_idle_deactivation_ablation(benchmark, report):
    benchmark.pedantic(lambda: mt_setup_path(None), rounds=3, iterations=1)

    mt_keep, res_keep = mt_setup_path(None)
    mt_drop, res_drop = mt_setup_path(IDLE_S)
    mo_keep = mo_dial_to_admission(None)
    mo_drop = mo_dial_to_admission(IDLE_S)

    report(format_table(
        ["variant", "MT setup-path ms", "MO dial->ACF ms",
         "idle ctx residency (ctx-s)"],
        [("vGPRS (paper: keep context)", mt_keep * 1000, mo_keep * 1000,
          f"{res_keep:.1f}"),
         ("vGPRS + idle deactivation", mt_drop * 1000, mo_drop * 1000,
          f"{res_drop:.1f}")],
        title="E12: the paper's rejected variant, measured "
              f"(idle timer {IDLE_S:.0f} s)",
    ))

    # "may significantly increase the call setup time" — quantified.
    assert mt_drop > 2 * mt_keep
    assert mo_drop > mo_keep
    # The compensation: contexts are not held while idle.
    assert res_drop < res_keep
    report(f"VERDICT: deactivating idle contexts multiplies the MT "
           f"setup path by {mt_drop / mt_keep:.1f}x and adds "
           f"{(mo_drop - mo_keep) * 1000:.0f} ms to MO admission — the "
           "paper was right to reject the variant; the saved residency "
           f"({res_keep:.0f} -> {res_drop:.0f} ctx-s) is the only gain.")
