"""Experiment E10 — §6 "Modifications to the existing networks".

Prints the comparison matrix with every row mechanically verified
against the implementation (class introspection + behavioural probes),
plus live behavioural evidence: a stock GSM handset completes a VoIP
call in the vGPRS network, while the 3G TR network requires the
H.323-capable handset.
"""

from repro.analysis.modifications import modification_matrix
from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.baseline_3gtr import H323MobileStation, build_3gtr_network
from repro.core.network import build_vgprs_network
from repro.gsm.ms import MobileStation


def vgprs_call_with_stock_handset():
    nw = build_vgprs_network()
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.3)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    scenarios.call_ms_to_terminal(nw, ms, term)
    return nw, ms


def test_e10_modifications(benchmark, report):
    nw, ms = benchmark.pedantic(
        vgprs_call_with_stock_handset, rounds=3, iterations=1
    )
    # Behavioural proof: the handset that just completed a VoIP call is a
    # plain GSM MobileStation (no vocoder changes, no H.323 stack).
    assert type(ms) is MobileStation
    assert ms.state == "in-call"

    nw3 = build_3gtr_network()
    ms3 = nw3.add_ms("MS1", "466920000000001", "+886935000001")
    assert isinstance(ms3, H323MobileStation)

    rows = modification_matrix()
    assert all(r.verified for r in rows)
    report(format_table(
        ["component", "vGPRS", "3G TR 23.923", "verified check"],
        [(r.component, r.vgprs, r.tgtr, r.check) for r in rows],
        title="E10 / Section 6: required modifications, verified against "
              "the implementation",
    ))
    report("VERDICT: all Section-6 modification claims hold in code — "
           "standard MS + standard gatekeeper in vGPRS; the only new "
           "element is the VMSC, whose GSM interfaces equal an MSC's.")
