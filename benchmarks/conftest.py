"""Benchmark fixtures.

Each ``bench_eNN`` module regenerates one paper artifact (figure or
Section-6 claim): it *asserts* the reproduced shape and *prints* the
table/series so ``pytest benchmarks/ --benchmark-only`` leaves a
human-readable record in ``bench_output.txt``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print through pytest's capture so experiment tables always reach
    the console/tee'd output file."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return emit
