"""Experiment E5 — Figure 6: MS call termination, steps 4.1-4.8.

Asserts the flow including GGSN PDP-context routing of the incoming
Setup and the paging exchange; times one MT call setup to answer.
"""

from repro.analysis.msc_chart import render_msc
from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.flows import NodeNames, match_flow, termination_flow
from repro.core.network import build_vgprs_network

FIGURE6_NODES = [
    "TERM1", "GK", "IPNET", "GGSN", "SGSN", "VMSC", "VLR", "BSC", "BTS1", "MS1",
]


def run_termination():
    nw = build_vgprs_network()
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001", answer_delay=0.5)
    term = nw.add_terminal("TERM1", "+886222000001")
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    since = nw.sim.now
    outcome = scenarios.call_terminal_to_ms(nw, term, ms)
    return nw, since, outcome


def test_e05_termination_flow(benchmark, report):
    nw, since, outcome = benchmark.pedantic(run_termination, rounds=3, iterations=1)

    flow = termination_flow(NodeNames())
    matched = match_flow(nw.sim.trace, flow, since=since)
    assert len(matched) == len(flow)

    alphabet = {step.message for step in flow}
    entries = [e for e in nw.sim.trace.entries if e.time >= since]
    report(render_msc(entries, FIGURE6_NODES, include=alphabet,
                      col_width=13, max_label=11))

    rows = [
        (step.step, step.message,
         f"{matched[step.step].src}->{matched[step.step].dst}",
         f"{(matched[step.step].time - since) * 1000:.1f} ms")
        for step in flow
    ]
    report(format_table(
        ["paper step", "message", "hop", "t+"], rows,
        title="E5 / Figure 6: MS call termination, steps 4.1-4.8",
    ))

    # Step 4.2: the GGSN routed the Setup through the *pre-activated*
    # PDP context — no PDU notification was needed.
    assert nw.sim.metrics.counters("GGSN.pdu_notifications") == {}
    # Step 4.4/4.5: paging preceded the setup toward the MS.
    assert matched["4.4-um"].time < matched["4.5-setup-um"].time

    report(format_table(
        ["milestone", "ms after caller dialled"],
        [("ringback at caller (step 4.6)",
          (outcome.alerting_at - outcome.dialled_at) * 1000),
         ("answer at caller (step 4.7)",
          (outcome.connected_at - outcome.dialled_at) * 1000)],
        title="E5: MT post-dial delays",
    ))
    report(f"VERDICT: Figure 6 reproduced ({len(flow)} steps); the incoming "
           "Setup rode the pre-activated signalling PDP context.")
