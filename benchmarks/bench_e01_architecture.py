"""Experiment E1 — Figures 1-3: architecture and protocol stacks.

Prints the constructed vGPRS topology (node inventory + link table) and
the ten-link protocol-stack table of Figure 3, cross-checked against the
live network.  The timed portion measures topology construction.
"""

from repro.analysis.report import format_table
from repro.core.network import build_vgprs_network
from repro.net.interfaces import FIGURE3_LINKS, INTERFACE_SPECS


def build_populated():
    nw = build_vgprs_network()
    nw.add_ms("MS1", "466920000000001", "+886935000001")
    nw.add_terminal("TERM1", "+886222000001")
    return nw


def test_e01_architecture(benchmark, report):
    nw = benchmark.pedantic(build_populated, rounds=3, iterations=1)

    # --- Figure 1/2(b): node inventory -------------------------------
    inventory = nw.net.inventory()
    expected_types = {
        "MobileStation", "Bts", "Bsc", "Vmsc", "Vlr", "Hlr",
        "Sgsn", "Ggsn", "IPCloud", "Gatekeeper", "H323Terminal",
    }
    assert expected_types <= {t for _, t in inventory}
    # The paper's headline: there is a VMSC and *no* classic MSC.
    assert not any(t == "GsmMsc" for _, t in inventory)

    report(format_table(
        ["node", "type"], inventory,
        title="E1 / Figure 2(b): vGPRS network inventory",
    ))

    # --- VMSC interfaces (Figure 2(a)) --------------------------------
    vmsc_links = [
        (l.interface, l.peer_of(nw.vmsc).name)
        for l in sorted(
            (link for links in nw.vmsc._links.values() for link in links),
            key=lambda l: l.interface,
        )
    ]
    assert ("A", "BSC") in vmsc_links
    assert ("B", "VLR") in vmsc_links
    assert ("C", "HLR") in vmsc_links
    assert ("Gb", "SGSN") in vmsc_links
    report(format_table(
        ["interface", "peer"], vmsc_links,
        title="E1 / Figure 2(a): VMSC interfaces",
    ))

    # --- Figure 3: the ten links and their stacks ---------------------
    rows = []
    for num, a, b, iface, stack in FIGURE3_LINKS:
        spec = INTERFACE_SPECS[iface]
        rows.append((num, a, b, iface, " / ".join(stack), spec.description))
    report(format_table(
        ["link", "from", "to", "iface", "protocols", "role"], rows,
        title="E1 / Figure 3: protocol stack per link",
    ))
    assert len(rows) == 10
    report("VERDICT: topology matches Figures 1-3 (10 links, VMSC replaces MSC).")
