"""Experiment E3 — Figure 5 (top): MS call origination, steps 2.1-2.9.

Asserts the simulated flow, prints the chart and per-step table, and
reports the post-dial delay decomposition.  The timed portion is one MO
call setup to answer.
"""

from repro.analysis.msc_chart import render_msc
from repro.analysis.report import format_table
from repro.core import scenarios
from repro.core.flows import NodeNames, match_flow, origination_flow
from repro.core.network import build_vgprs_network

FIGURE5_NODES = [
    "MS1", "BTS1", "BSC", "VMSC", "VLR", "SGSN", "GGSN", "IPNET", "GK", "TERM1",
]


def run_origination():
    nw = build_vgprs_network()
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.5)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    since = nw.sim.now
    outcome = scenarios.call_ms_to_terminal(nw, ms, term)
    return nw, since, outcome


def test_e03_origination_flow(benchmark, report):
    nw, since, outcome = benchmark.pedantic(run_origination, rounds=3, iterations=1)

    flow = origination_flow(NodeNames())
    matched = match_flow(nw.sim.trace, flow, since=since)
    assert len(matched) == len(flow)

    alphabet = {step.message for step in flow}
    entries = [e for e in nw.sim.trace.entries if e.time >= since]
    report(render_msc(entries, FIGURE5_NODES, include=alphabet,
                      col_width=13, max_label=11))

    rows = [
        (step.step, step.message,
         f"{matched[step.step].src}->{matched[step.step].dst}",
         f"{(matched[step.step].time - since) * 1000:.1f} ms")
        for step in flow
    ]
    report(format_table(
        ["paper step", "message", "hop", "t+"], rows,
        title="E3 / Figure 5 (top): MS call origination, steps 2.1-2.9",
    ))

    report(format_table(
        ["milestone", "ms after dialling"],
        [("ringback at MS (step 2.7)", outcome.setup_delay * 1000),
         ("answer relayed to MS (step 2.8)", outcome.answer_delay * 1000)],
        title="E3: post-dial delays",
    ))
    assert outcome.setup_delay < 1.0
    # Step 2.9: the voice PDP context exists once the call is answered.
    entry = nw.vmsc.ms_table.get(nw.mss["MS1"].imsi)
    nw.sim.run(until=nw.sim.now + 0.5)
    assert entry.voice_ready
    report("VERDICT: Figure 5 origination reproduced "
           f"({len(flow)} steps; ringback after {outcome.setup_delay * 1000:.0f} ms).")
