"""Micro-benchmarks: engineering throughput numbers (not paper figures).

* packet build/parse throughput for the scapy-style codec;
* discrete-event kernel throughput — a soak-style *population* shape
  (1000 pending events at all times, exercising heap ordering) and a
  serial *chain* shape (one pending event, pure dispatch overhead);
* end-to-end simulated call throughput (full signalling per call);
* a workload soak in throughput mode (codec and tracing off), the
  configuration used for hour-scale capacity runs.
"""

import pytest

from repro.identities import IMSI, E164Number, IPv4Address, TunnelId
from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.core.sweeps import apply_media
from repro.core.workload import CallWorkload, build_population
from repro.packets.base import Packet
from repro.packets.gtp import GtpHeader, MSG_T_PDU
from repro.packets.ip import IPv4, UDP
from repro.packets.q931 import Q931Setup
from repro.sim.kernel import Simulator

IP_A = IPv4Address.parse("10.0.0.1")
IP_B = IPv4Address.parse("10.0.0.2")
NUM = E164Number("886", "935000001")
TID = TunnelId(IMSI("466920000000001"), 5)

SAMPLE = (
    IPv4(src=IP_A, dst=IP_B)
    / UDP(sport=3386, dport=3386)
    / GtpHeader(msg_type=MSG_T_PDU, seq=1, tid=TID)
    / Q931Setup(
        call_ref=7, called=NUM, calling=NUM,
        signal_address=IP_A, signal_port=1720,
        media_address=IP_A, media_port=5004,
    )
)
WIRE = SAMPLE.build()


def test_micro_packet_build(benchmark):
    wire = benchmark(SAMPLE.build)
    assert wire == WIRE


def test_micro_packet_parse(benchmark):
    pkt = benchmark(Packet.parse, WIRE)
    assert pkt == SAMPLE


def test_micro_packet_roundtrip(benchmark):
    def roundtrip():
        return Packet.parse(SAMPLE.build())

    assert benchmark(roundtrip) == SAMPLE


def test_micro_event_throughput(benchmark):
    """Soak-style population shape: ~1000 events pending at all times
    with randomised delays, so heap ordering cost — the kernel's real
    bottleneck under workload soaks — dominates."""

    def run_events():
        sim = Simulator()
        count = {"n": 0}
        rng = sim.rng.stream("bench")

        def tick():
            count["n"] += 1
            if count["n"] < 10_000:
                sim.schedule(0.5 + rng.random(), tick)

        for _ in range(1000):
            sim.schedule(rng.random(), tick)
        sim.run()
        return count["n"]

    # 1000 seed events plus 9999 respawned ticks drain deterministically.
    assert benchmark(run_events) == 10_999


def test_micro_event_chain(benchmark):
    """Serial chain shape: one pending event, measuring pure
    schedule/dispatch overhead with no heap pressure."""

    def run_events():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count["n"]

    assert benchmark(run_events) == 10_000


def test_micro_end_to_end_call(benchmark):
    """One fully signalled MO call (registration amortised outside)."""
    nw = build_vgprs_network()
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.2)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)

    def one_call():
        scenarios.call_ms_to_terminal(nw, ms, term)
        scenarios.hangup_from_ms(nw, ms)
        scenarios.settle(nw, 1.0)

    benchmark.pedantic(one_call, rounds=20, iterations=1)
    assert len(nw.gk.call_records) >= 20


def _media_spurt_setup(media):
    """Fresh connected call, ready to talk — excluded from the timed
    region so the media-frame benchmarks compare only the talk path."""
    nw = build_vgprs_network(seed=7, wire_fidelity=False)
    nw.sim.trace.enabled = False
    apply_media(nw.sim, media)
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.2)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    scenarios.call_ms_to_terminal(nw, ms, term)
    return (nw, ms), {}


def _media_spurt_run(nw, ms):
    ms.start_talking(duration=30.0)
    nw.sim.run(until=nw.sim.now + 31.0)
    hist = nw.sim.metrics.get_histogram("TERM1.mouth_to_ear")
    return hist.count if hist is not None else 0


@pytest.mark.parametrize("media", ["events", "fluid"])
def test_micro_media_frames(benchmark, media):
    """One 30 s talk spurt (1501 frames) through the full uplink path,
    events vs fluid.  ``bench_to_json.py`` derives
    ``fluid_vs_events_speedup_x`` from this pair."""
    count = benchmark.pedantic(
        _media_spurt_run,
        setup=lambda: _media_spurt_setup(media),
        rounds=5,
        iterations=1,
    )
    assert count == 1501


def test_micro_soak_voice(benchmark):
    """The canonical voice soak: 600 simulated seconds of random calls
    with 20-40 s talk spurts under the fluid media model — the headline
    ``soak_sim_seconds_per_wall_s`` derives from this benchmark.  The
    per-frame event path would spend ~20 ms of simulated traffic per
    frame event here; the fluid model keeps the spurts analytic, so the
    wall cost is the signalling."""

    def run_soak():
        nw = build_vgprs_network(seed=7, wire_fidelity=False)
        nw.sim.trace.enabled = False
        pairs = build_population(nw, size=20, answer_delay=1.5)
        nw.sim.run(until=0.5)
        for ms, _ in pairs:
            scenarios.register_ms(nw, ms)
        wl = CallWorkload(nw, pairs, call_rate=0.005,
                          hold_range=(20.0, 40.0), talk=True)
        wl.start()
        nw.sim.run(until=nw.sim.now + 600.0)
        wl.stop()
        return wl.stats

    stats = benchmark.pedantic(run_soak, rounds=5, iterations=1)
    assert stats.connected > 25
    assert stats.completion_ratio > 0.9


def test_micro_soak_workload(benchmark):
    """120 simulated seconds of random calls over 20 pairs in throughput
    mode (``wire_fidelity=False``, trace disabled) — the configuration
    capacity soaks run with, so this tracks the whole message path:
    kernel, links, dispatch and the event-driven workload waits."""

    def run_soak():
        nw = build_vgprs_network(seed=7, wire_fidelity=False)
        nw.sim.trace.enabled = False
        pairs = build_population(nw, size=20, answer_delay=1.5)
        nw.sim.run(until=0.5)
        for ms, _ in pairs:
            scenarios.register_ms(nw, ms)
        wl = CallWorkload(nw, pairs, call_rate=0.5, hold_range=(2.0, 6.0),
                          talk=False)
        wl.start()
        nw.sim.run(until=nw.sim.now + 120.0)
        wl.stop()
        return wl.stats

    # 5 rounds: the min feeds a 5% overhead gate (check_overhead.py), so
    # it needs to sit below scheduler jitter, not just complete quickly.
    stats = benchmark.pedantic(run_soak, rounds=5, iterations=1)
    assert stats.connected > 100
    assert stats.completion_ratio > 0.9


def test_micro_soak_with_series(benchmark):
    """The same soak with a 1 s time-series sampler armed.  Paired with
    ``test_micro_soak_workload`` by ``check_overhead.py``: the sampler
    adds one registry read per simulated second, and its overhead over
    the plain soak must stay within the series budget (<= 5%)."""
    from repro.obs.series import SeriesSampler

    def run_soak():
        nw = build_vgprs_network(seed=7, wire_fidelity=False)
        nw.sim.trace.enabled = False
        sampler = SeriesSampler(nw.sim, interval=1.0).start()
        pairs = build_population(nw, size=20, answer_delay=1.5)
        nw.sim.run(until=0.5)
        for ms, _ in pairs:
            scenarios.register_ms(nw, ms)
        wl = CallWorkload(nw, pairs, call_rate=0.5, hold_range=(2.0, 6.0),
                          talk=False)
        wl.start()
        nw.sim.run(until=nw.sim.now + 120.0)
        wl.stop()
        sampler.stop(flush=True)
        return wl.stats, sampler

    (stats, sampler) = benchmark.pedantic(run_soak, rounds=5, iterations=1)
    assert stats.connected > 100
    assert stats.completion_ratio > 0.9
    assert len(sampler.buckets) >= 100


def _traced_soak():
    """The workload soak with tracing *enabled* (bounded window, the
    monitoring configuration) — the baseline the flight-recorder pair
    shares, since the recorder rides the trace sink and measuring it
    against a trace-off soak would charge it for tracing itself."""
    nw = build_vgprs_network(seed=7, wire_fidelity=False)
    nw.sim.trace.set_limit(8192)
    pairs = build_population(nw, size=20, answer_delay=1.5)
    nw.sim.run(until=0.5)
    for ms, _ in pairs:
        scenarios.register_ms(nw, ms)
    wl = CallWorkload(nw, pairs, call_rate=0.5, hold_range=(2.0, 6.0),
                      talk=False)
    return nw, wl


def test_micro_soak_traced(benchmark):
    """120 simulated seconds of the workload soak with a bounded trace
    window armed — the flight-recorder pair's baseline."""

    def run_soak():
        nw, wl = _traced_soak()
        wl.start()
        nw.sim.run(until=nw.sim.now + 120.0)
        wl.stop()
        return wl.stats

    stats = benchmark.pedantic(run_soak, rounds=5, iterations=1)
    assert stats.connected > 100
    assert stats.completion_ratio > 0.9


def test_micro_soak_flight_recorder(benchmark):
    """The traced soak with a :class:`FlightRecorder` armed (rings
    filling from the trace sink and span closures; no incident ever
    triggers).  Paired with ``test_micro_soak_traced`` by
    ``check_overhead.py``: the recorder budget bounds the cost of the
    always-on rings over an identical traced run."""
    from repro.obs.recorder import FlightRecorder

    def run_soak():
        nw, wl = _traced_soak()
        recorder = FlightRecorder(nw.sim, run="bench").arm()
        wl.start()
        nw.sim.run(until=nw.sim.now + 120.0)
        wl.stop()
        recorder.flush()
        return wl.stats, recorder

    stats, recorder = benchmark.pedantic(run_soak, rounds=5, iterations=1)
    assert stats.connected > 100
    assert stats.completion_ratio > 0.9
    assert len(recorder.entries) > 0
    assert not recorder.bundles  # nothing triggered: pure ring cost


def _open_loop_soak():
    """The serve-mode soak shape: 20 pairs under open-loop Poisson
    arrivals matching the plain soak's offered load (0.5 calls/s per
    pair).  Returns (network, workload), started and ready to run."""
    from repro.core.workload import DiurnalProfile, OpenLoopWorkload

    nw = build_vgprs_network(seed=7, wire_fidelity=False)
    nw.sim.trace.enabled = False
    pairs = build_population(nw, size=20, answer_delay=1.5)
    nw.sim.run(until=0.5)
    for ms, _ in pairs:
        scenarios.register_ms(nw, ms)
    wl = OpenLoopWorkload(
        nw=nw, pairs=pairs,
        profile=DiurnalProfile.flat(20 * 0.5 * 3600.0),
        hold_range=(2.0, 6.0), talk=False,
    )
    return nw, wl


def test_micro_soak_openloop(benchmark):
    """120 simulated seconds of the open-loop workload as one batch
    ``run()`` — the rate-independent comparator for the served soak
    below (same seed, same arrivals, no slicing, no publication)."""

    def run_soak():
        nw, wl = _open_loop_soak()
        wl.start()
        nw.sim.run(until=nw.sim.now + 120.0)
        wl.stop_admitting()
        nw.sim.run(until=nw.sim.now + 60.0)  # drain like the serve loop
        wl.stop()
        return wl.stats

    stats = benchmark.pedantic(run_soak, rounds=5, iterations=1)
    assert stats.connected > 100


def test_micro_soak_served(benchmark):
    """The same open-loop soak driven through the serve loop:
    ``run_paced`` quantum slices with a rate-0 pacer and a full
    telemetry publish (metrics snapshot + status) between every slice.
    Paired with ``test_micro_soak_openloop`` by ``check_overhead.py``:
    pacing lives outside the kernel and a publish is one snapshot per
    quantum, so the served soak must stay within the pacing budget of
    the batch run of the identical workload."""
    from repro.serve import Pacer, ServeLoop

    def run_soak():
        nw, wl = _open_loop_soak()
        loop = ServeLoop(nw.sim, wl, Pacer(rate=0),
                         duration=120.0, quantum=0.25)
        loop.run()
        return wl.stats, loop

    # 5 rounds like the plain soak: the min feeds the pacing-overhead
    # gate, so it must sit below scheduler jitter.
    stats, loop = benchmark.pedantic(run_soak, rounds=5, iterations=1)
    assert stats.connected > 100
    assert loop.drained
