"""Micro-benchmarks: engineering throughput numbers (not paper figures).

* packet build/parse throughput for the scapy-style codec;
* discrete-event kernel throughput;
* end-to-end simulated call throughput (full signalling per call).
"""

from repro.identities import IMSI, E164Number, IPv4Address, TunnelId
from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.packets.base import Packet
from repro.packets.gtp import GtpHeader, MSG_T_PDU
from repro.packets.ip import IPv4, UDP
from repro.packets.q931 import Q931Setup
from repro.sim.kernel import Simulator

IP_A = IPv4Address.parse("10.0.0.1")
IP_B = IPv4Address.parse("10.0.0.2")
NUM = E164Number("886", "935000001")
TID = TunnelId(IMSI("466920000000001"), 5)

SAMPLE = (
    IPv4(src=IP_A, dst=IP_B)
    / UDP(sport=3386, dport=3386)
    / GtpHeader(msg_type=MSG_T_PDU, seq=1, tid=TID)
    / Q931Setup(
        call_ref=7, called=NUM, calling=NUM,
        signal_address=IP_A, signal_port=1720,
        media_address=IP_A, media_port=5004,
    )
)
WIRE = SAMPLE.build()


def test_micro_packet_build(benchmark):
    wire = benchmark(SAMPLE.build)
    assert wire == WIRE


def test_micro_packet_parse(benchmark):
    pkt = benchmark(Packet.parse, WIRE)
    assert pkt == SAMPLE


def test_micro_packet_roundtrip(benchmark):
    def roundtrip():
        return Packet.parse(SAMPLE.build())

    assert benchmark(roundtrip) == SAMPLE


def test_micro_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count["n"]

    assert benchmark(run_events) == 10_000


def test_micro_end_to_end_call(benchmark):
    """One fully signalled MO call (registration amortised outside)."""
    nw = build_vgprs_network()
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.2)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)

    def one_call():
        scenarios.call_ms_to_terminal(nw, ms, term)
        scenarios.hangup_from_ms(nw, ms)
        scenarios.settle(nw, 1.0)

    benchmark.pedantic(one_call, rounds=20, iterations=1)
    assert len(nw.gk.call_records) >= 20
