"""Experiment E6 — Figures 7-8: tromboning vs. its elimination.

Head-to-head: the same roamer-terminated call in classic GSM (two
international trunks) and in vGPRS (local call through the H.323
gateway), plus the not-registered fallback.  Times the vGPRS scenario.
"""

from repro.analysis.report import format_table
from repro.identities import E164Number, IMSI
from repro.core.baseline_gsm import build_classic_roaming_network
from repro.core.tromboning import build_vgprs_roaming_network
from repro.gsm.subscriber import SubscriberRecord

ROAMER = ("MS-X", "234150000000001", "+447700900123")


def run_classic():
    nw = build_classic_roaming_network()
    x = nw.add_roamer(*ROAMER, answer_delay=0.5)
    y = nw.add_phone("PHONE-Y", "+85221234567")
    x.power_on()
    assert nw.sim.run_until_true(lambda: x.registered, timeout=30)
    since = nw.sim.now
    y.place_call(x.msisdn)
    assert nw.sim.run_until_true(
        lambda: x.state == "in-call" and y.state == "in-call", timeout=30
    )
    setup = y.answered_at - since
    y.start_talking(duration=1.0)
    nw.sim.run(until=nw.sim.now + 2.0)
    m2e = nw.sim.metrics.get_histogram("MS-X.mouth_to_ear")
    return {
        "intl_trunks": nw.ledger.international_count(since=since),
        "total_trunks": nw.ledger.total_count(since=since),
        "setup_s": setup,
        "voice_m2e_ms": m2e.mean * 1000,
        "hops": [(r.from_switch, r.to_switch,
                  "intl" if r.international else "local")
                 for r in nw.ledger.records if r.seized_at >= since],
    }


def run_vgprs():
    nw = build_vgprs_roaming_network()
    x = nw.add_roamer(*ROAMER, answer_delay=0.5)
    nw.sim.run(until=1.0)
    x.power_on()
    assert nw.sim.run_until_true(lambda: x.registered, timeout=30)
    since = nw.sim.now
    nw.phone_y.place_call(x.msisdn)
    assert nw.sim.run_until_true(
        lambda: x.state == "in-call" and nw.phone_y.state == "in-call",
        timeout=30,
    )
    setup = nw.phone_y.answered_at - since
    nw.phone_y.start_talking(duration=1.0)
    nw.sim.run(until=nw.sim.now + 2.0)
    m2e = nw.sim.metrics.get_histogram("MS-X.mouth_to_ear")
    return {
        "intl_trunks": nw.ledger.international_count(since=since),
        "total_trunks": nw.ledger.total_count(since=since),
        "setup_s": setup,
        "voice_m2e_ms": m2e.mean * 1000,
        "hops": [(r.from_switch, r.to_switch,
                  "intl" if r.international else "local")
                 for r in nw.ledger.records if r.seized_at >= since],
    }


def run_vgprs_fallback():
    """The roamer is NOT registered locally: gateway misses, exchange
    falls back to the international PSTN route (Figure 8's else-branch)."""
    nw = build_vgprs_roaming_network()
    nw.hlr_uk.add_subscriber(SubscriberRecord(
        imsi=IMSI("234150000000002"),
        msisdn=E164Number.parse("+447700900124"),
    ))
    nw.sim.run(until=1.0)
    since = nw.sim.now
    nw.phone_y.place_call(E164Number.parse("+447700900124"))
    nw.sim.run(until=nw.sim.now + 10)
    return {
        "gk_misses": nw.sim.metrics.counters("GW-HK.gk_misses").get(
            "GW-HK.gk_misses", 0
        ),
        "intl_trunks": nw.ledger.international_count(since=since),
    }


def test_e06_tromboning(benchmark, report):
    classic = run_classic()
    vgprs = benchmark.pedantic(run_vgprs, rounds=3, iterations=1)
    fallback = run_vgprs_fallback()

    # Figure 7: "it will result in two international calls."
    assert classic["intl_trunks"] == 2
    # Figure 8: "the call from y to x will be a local phone call."
    assert vgprs["intl_trunks"] == 0
    assert vgprs["voice_m2e_ms"] < classic["voice_m2e_ms"]
    # Fallback: one international attempt after the gatekeeper miss.
    assert fallback["gk_misses"] == 1 and fallback["intl_trunks"] == 1

    report(format_table(
        ["approach", "intl trunks", "all trunks", "setup s", "voice m2e ms"],
        [("classic GSM (Figure 7)", classic["intl_trunks"],
          classic["total_trunks"], classic["setup_s"], classic["voice_m2e_ms"]),
         ("vGPRS (Figure 8)", vgprs["intl_trunks"],
          vgprs["total_trunks"], vgprs["setup_s"], vgprs["voice_m2e_ms"])],
        title="E6 / Figures 7-8: call from HK phone to UK roamer in HK",
    ))
    report(format_table(
        ["approach", "circuit legs"],
        [("classic GSM", " | ".join(f"{a}->{b} ({k})" for a, b, k in classic["hops"])),
         ("vGPRS", " | ".join(f"{a}->{b} ({k})" for a, b, k in vgprs["hops"]))],
        title="E6: circuit legs seized",
    ))
    report(f"VERDICT: tromboning reproduced (2 intl trunks) and eliminated "
           f"(0 intl trunks); voice delay {classic['voice_m2e_ms']:.0f} ms -> "
           f"{vgprs['voice_m2e_ms']:.0f} ms; unregistered-roamer fallback "
           "uses the normal international route.")
