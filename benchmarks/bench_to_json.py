"""Post-process a pytest-benchmark JSON dump into ``BENCH_kernel.json``.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro.py -q \\
        --benchmark-json=/tmp/bench.json
    python benchmarks/bench_to_json.py /tmp/bench.json -o BENCH_kernel.json

The output records the kernel-relevant numbers in one small, diffable
file: per-benchmark min/mean seconds, derived throughputs (events/s for
the kernel shapes, calls/s end-to-end, simulated-seconds-per-wall-second
for the soak) and the speedup against the recorded seed baseline.

Baselines default to the seed-revision measurements taken on the same
container this file was generated on; override with repeated
``--baseline name=seconds`` for other machines.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict

#: min-seconds at the seed revision (commit 744c730), measured with the
#: identical benchmark bodies on the reference container.
SEED_BASELINES: Dict[str, float] = {
    "test_micro_event_throughput": 0.05340,
    "test_micro_event_chain": 0.01303,
    "test_micro_soak_workload": 1.0211,
    # The voice soak predates the fluid media model only as the
    # per-frame path: this is the identical benchmark body measured
    # with media="events" on the reference container.
    "test_micro_soak_voice": 5.5461,
}

#: events executed per round, for events/s derivation.
EVENTS_PER_ROUND = {
    "test_micro_event_throughput": 10_999,
    "test_micro_event_chain": 10_000,
}

#: simulated seconds per round of the signalling-only soak benchmark.
SOAK_SIM_SECONDS = 120.0

#: simulated seconds per round of the canonical voice soak (fluid
#: media), the source of the headline ``soak_sim_seconds_per_wall_s``.
VOICE_SOAK_SIM_SECONDS = 600.0

#: the events/fluid media-frame benchmark pair (pytest parametrize ids).
MEDIA_PAIR = ("test_micro_media_frames[events]", "test_micro_media_frames[fluid]")


def reference_metrics() -> dict:
    """Metrics snapshot of one seeded reference call (the ``call`` demo
    shape), embedded in the bench JSON so throughput numbers and the
    simulation counters they were measured against travel together."""
    try:
        from repro.core import scenarios
        from repro.core.network import build_vgprs_network
    except ImportError:  # running from the repo root without PYTHONPATH
        import os

        sys.path.insert(
            0, os.path.join(os.path.dirname(__file__), "..", "src")
        )
        from repro.core import scenarios
        from repro.core.network import build_vgprs_network

    nw = build_vgprs_network()
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.6)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    scenarios.call_ms_to_terminal(nw, ms, term)
    scenarios.hangup_from_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 1.0)
    return nw.sim.metrics.snapshot()


def summarise(raw: dict, baselines: Dict[str, float]) -> dict:
    out: dict = {
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw")
        or raw.get("machine_info", {}).get("machine", "unknown"),
        "benchmarks": {},
        "derived": {},
        "speedup_vs_seed": {},
    }
    for bench in raw.get("benchmarks", []):
        name = bench["name"]
        stats = bench["stats"]
        entry = {
            "min_s": stats["min"],
            "mean_s": stats["mean"],
            "rounds": stats["rounds"],
        }
        out["benchmarks"][name] = entry
        if name in EVENTS_PER_ROUND:
            out["derived"][name.replace("test_micro_", "") + "_events_per_s"] = (
                EVENTS_PER_ROUND[name] / stats["min"]
            )
        if name == "test_micro_end_to_end_call":
            out["derived"]["end_to_end_calls_per_s"] = 1.0 / stats["mean"]
        if name == "test_micro_soak_workload":
            out["derived"]["soak_signalling_sim_seconds_per_wall_s"] = (
                SOAK_SIM_SECONDS / stats["min"]
            )
        if name == "test_micro_soak_voice":
            out["derived"]["soak_sim_seconds_per_wall_s"] = (
                VOICE_SOAK_SIM_SECONDS / stats["min"]
            )
        baseline = baselines.get(name)
        if baseline:
            out["speedup_vs_seed"][name] = {
                "seed_min_s": baseline,
                "min_s": stats["min"],
                "speedup": baseline / stats["min"],
            }
    events_bench = out["benchmarks"].get(MEDIA_PAIR[0])
    fluid_bench = out["benchmarks"].get(MEDIA_PAIR[1])
    if events_bench and fluid_bench:
        # Fresh-vs-fresh pair (same machine, same setup), so the ratio
        # travels across machines like the series overhead below.
        out["derived"]["fluid_vs_events_speedup_x"] = (
            events_bench["min_s"] / fluid_bench["min_s"]
        )
    with_series = out["benchmarks"].get("test_micro_soak_with_series")
    plain = out["benchmarks"].get("test_micro_soak_workload")
    if with_series and plain:
        # Fresh-vs-fresh on the same machine, so unlike the seed
        # speedups this ratio is comparable across machines.
        out["derived"]["series_sampler_overhead_x"] = (
            with_series["min_s"] / plain["min_s"]
        )
    with_recorder = out["benchmarks"].get("test_micro_soak_flight_recorder")
    traced = out["benchmarks"].get("test_micro_soak_traced")
    if with_recorder and traced:
        # The recorder rides the trace sink, so its honest baseline is
        # the traced soak, not the trace-off one.
        out["derived"]["flight_recorder_overhead_x"] = (
            with_recorder["min_s"] / traced["min_s"]
        )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", help="pytest-benchmark JSON dump")
    parser.add_argument("-o", "--output", default="BENCH_kernel.json")
    parser.add_argument(
        "--baseline",
        action="append",
        default=[],
        metavar="NAME=SECONDS",
        help="override a seed baseline (repeatable)",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip embedding the reference-call metrics snapshot",
    )
    args = parser.parse_args(argv)

    baselines = dict(SEED_BASELINES)
    for spec in args.baseline:
        name, _, value = spec.partition("=")
        if not value:
            parser.error(f"--baseline needs NAME=SECONDS, got {spec!r}")
        baselines[name] = float(value)

    with open(args.input) as fh:
        raw = json.load(fh)
    summary = summarise(raw, baselines)
    if not args.no_metrics:
        summary["metrics_snapshot"] = reference_metrics()
    with open(args.output, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for name, cmp in sorted(summary["speedup_vs_seed"].items()):
        print(f"{name}: {cmp['seed_min_s']:.4f}s -> {cmp['min_s']:.4f}s "
              f"({cmp['speedup']:.2f}x)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
