"""Soak test: a population of subscribers making random calls for
minutes of simulated time, with system-wide invariants checked at the
end.  This is the failure-injection and leak-detection net for the whole
stack."""

import pytest

from repro.core import scenarios


def drain(nw, pairs, rounds: int = 5) -> None:
    """Hang up every call that is active or still connecting; calls
    admitted just before the workload stopped may only reach the
    connected state a few seconds later."""
    for _ in range(rounds):
        nw.sim.run(until=nw.sim.now + 3.0)
        for ms, _ in pairs:
            if ms.state == "in-call":
                ms.hangup()
        for _, term in pairs:
            for ref, call in list(term.calls.items()):
                if call.state == "in-call":
                    term.hangup(ref)
    nw.sim.run(until=nw.sim.now + 10.0)
from repro.core.network import build_vgprs_network
from repro.core.workload import CallWorkload, build_population
from repro.gprs.pdp import NSAPI_VOICE


@pytest.fixture(scope="module")
def soaked():
    """Run a 120-simulated-second mixed workload over 6 pairs once and
    share the result across the invariant checks."""
    nw = build_vgprs_network(seed=99)
    pairs = build_population(nw, size=6)
    nw.sim.run(until=0.5)
    for ms, _ in pairs:
        scenarios.register_ms(nw, ms)
    workload = CallWorkload(nw, pairs, call_rate=0.15, hold_range=(1.0, 4.0))
    workload.start()
    nw.sim.run(until=nw.sim.now + 120.0)
    workload.stop()
    drain(nw, pairs)
    return nw, pairs, workload


class TestSoakInvariants:
    def test_meaningful_load_was_generated(self, soaked):
        _, _, workload = soaked
        assert workload.stats.attempted >= 20
        assert workload.stats.attempted_mo > 0
        assert workload.stats.attempted_mt > 0
        assert workload.stats.completion_ratio > 0.8

    def test_no_unhandled_messages(self, soaked):
        nw, _, _ = soaked
        assert nw.sim.metrics.counters("unhandled") == {}

    def test_all_radio_channels_returned(self, soaked):
        nw, _, _ = soaked
        assert nw.bscs[0].tch_in_use == 0

    def test_no_voice_contexts_leaked(self, soaked):
        nw, pairs, _ = soaked
        for ms, _ in pairs:
            assert (ms.imsi, NSAPI_VOICE) not in nw.sgsn.pdp_contexts
            entry = nw.vmsc.ms_table.get(ms.imsi)
            assert entry.signalling_ready and not entry.voice_ready

    def test_no_dangling_calls_anywhere(self, soaked):
        nw, pairs, _ = soaked
        assert nw.vmsc.calls == {}
        assert nw.gk.active_calls == {}
        for _, term in pairs:
            assert term.calls == {}
        for ms, _ in pairs:
            assert ms.state == "idle"

    def test_every_connected_call_was_charged(self, soaked):
        nw, _, workload = soaked
        # Calls that connected in the instant the workload stopped are
        # drained (and charged) without being counted in the stats, so
        # the record count can exceed the counted connections — never
        # the reverse, and every record must be complete.
        assert len(nw.gk.call_records) >= workload.stats.connected
        assert all(cdr.complete for cdr in nw.gk.call_records)

    def test_signalling_context_survived_the_soak(self, soaked):
        nw, pairs, _ = soaked
        # One signalling context per subscriber, held throughout.
        assert nw.sgsn.context_count() == len(pairs)

    def test_voice_frames_flowed(self, soaked):
        nw, pairs, _ = soaked
        total = sum(term.frames_received for _, term in pairs)
        assert total > 100

    def test_deterministic_given_seed(self):
        def run():
            nw = build_vgprs_network(seed=123)
            pairs = build_population(nw, size=3)
            nw.sim.run(until=0.5)
            for ms, _ in pairs:
                scenarios.register_ms(nw, ms)
            workload = CallWorkload(nw, pairs, call_rate=0.2)
            workload.start()
            nw.sim.run(until=nw.sim.now + 40.0)
            workload.stop()
            return (
                workload.stats.attempted,
                workload.stats.connected,
                len(nw.sim.trace.entries),
            )

        assert run() == run()


class TestSoakProperty:
    """Hypothesis over workload seeds: core invariants hold for any
    random call pattern."""

    def test_invariants_hold_for_random_seeds(self):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=5, deadline=None)
        @given(st.integers(min_value=0, max_value=2**16))
        def run(seed):
            nw = build_vgprs_network(seed=seed)
            pairs = build_population(nw, size=3)
            nw.sim.run(until=0.5)
            for ms, _ in pairs:
                scenarios.register_ms(nw, ms)
            workload = CallWorkload(
                nw, pairs, call_rate=0.3, hold_range=(0.5, 2.0), talk=False
            )
            workload.start()
            nw.sim.run(until=nw.sim.now + 30.0)
            workload.stop()
            drain(nw, pairs)
            assert nw.sim.metrics.counters("unhandled") == {}
            assert nw.bscs[0].tch_in_use == 0
            assert nw.vmsc.calls == {}
            assert nw.gk.active_calls == {}
            for ms, _ in pairs:
                assert ms.state == "idle"
                entry = nw.vmsc.ms_table.get(ms.imsi)
                assert entry.signalling_ready and not entry.voice_ready
            assert len(nw.gk.call_records) >= workload.stats.connected
            assert all(cdr.complete for cdr in nw.gk.call_records)

        run()
