"""Call abandonment: the caller gives up while the far end is still
ringing.  Both directions, for MS and terminal callers."""

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
TERM1 = "+886222000001"


@pytest.fixture
def slow_answer():
    """Network where both parties take 30 s to answer (never reached)."""
    nw = build_vgprs_network(seed=55)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=30.0)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=30.0)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    return nw, ms, term


class TestCallerAbandons:
    def test_ms_abandons_while_terminal_rings(self, slow_answer):
        nw, ms, term = slow_answer
        ms.place_call(term.alias)
        assert nw.sim.run_until_true(
            lambda: ms.state == "mo-alerting", timeout=10
        )
        ms.hangup()
        assert nw.sim.run_until_true(
            lambda: ms.state == "idle" and not term.calls, timeout=10
        )
        nw.sim.run(until=nw.sim.now + 2)
        assert nw.vmsc.calls == {}
        assert nw.gk.active_calls == {}
        # The terminal's pending answer must not resurrect the call.
        nw.sim.run(until=nw.sim.now + 35)
        assert term.calls == {}
        assert nw.sim.metrics.counters("unhandled") == {}

    def test_terminal_abandons_while_ms_rings(self, slow_answer):
        nw, ms, term = slow_answer
        ref = term.place_call(ms.msisdn)
        assert nw.sim.run_until_true(
            lambda: ms.state == "mt-ringing", timeout=10
        )
        term.hangup(ref)
        assert nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        nw.sim.run(until=nw.sim.now + 2)
        assert nw.vmsc.calls == {}
        # The MS's scheduled answer must not fire into a dead call.
        nw.sim.run(until=nw.sim.now + 35)
        assert ms.state == "idle"
        assert nw.sim.metrics.counters("unhandled") == {}

    def test_radio_and_pdp_cleaned_after_abandon(self, slow_answer):
        nw, ms, term = slow_answer
        ms.place_call(term.alias)
        nw.sim.run_until_true(lambda: ms.state == "mo-alerting", timeout=10)
        ms.hangup()
        nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        nw.sim.run(until=nw.sim.now + 2)
        assert nw.bscs[0].tch_in_use == 0
        entry = nw.vmsc.ms_table.get(ms.imsi)
        assert not entry.voice_ready  # never activated, never leaked
        assert entry.signalling_ready

    def test_new_call_works_after_abandon(self, slow_answer):
        nw, ms, term = slow_answer
        ms.place_call(term.alias)
        nw.sim.run_until_true(lambda: ms.state == "mo-alerting", timeout=10)
        ms.hangup()
        nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        nw.sim.run(until=nw.sim.now + 2)
        term.answer_delay = 0.3
        outcome = scenarios.call_ms_to_terminal(nw, ms, term)
        assert outcome.connected_at is not None

    def test_cdr_written_even_for_unanswered_call(self, slow_answer):
        """Step 3.3 applies to every admitted call: the GK records the
        (zero-duration) statistics."""
        nw, ms, term = slow_answer
        ms.place_call(term.alias)
        nw.sim.run_until_true(lambda: ms.state == "mo-alerting", timeout=10)
        ms.hangup()
        nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        nw.sim.run(until=nw.sim.now + 2)
        assert len(nw.gk.call_records) == 1
        assert nw.gk.call_records[0].reported_duration_ms == 0
