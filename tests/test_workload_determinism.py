"""Determinism of the workload driver across wait implementations.

The event-driven (Signal-based) waits must not change *what* the
simulation does — only how the waiting process is woken.  These tests
pin that down: a registration plus an MO call driven through the
workload yields byte-identical ``TraceRecorder.triples()`` sequences
under the polling path and the signal path, and each path is
individually reproducible from the seed.
"""

import hashlib
import json

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.core.workload import CallWorkload, build_population

SEED = 11


def run_workload_flow(use_signals: bool, seed: int = SEED, times: bool = False):
    """Register one MS and drive a single MO call through the workload;
    returns the recorded (message, src, dst) triples (with delivery
    times prepended when *times* is set)."""
    nw = build_vgprs_network(seed=seed)
    pairs = build_population(nw, size=1, answer_delay=0.4)
    nw.sim.run(until=0.5)
    for ms, _ in pairs:
        scenarios.register_ms(nw, ms)
    wl = CallWorkload(nw, pairs, call_rate=0.5, hold_range=(1.0, 2.0),
                      mt_fraction=0.0, talk=False, use_signals=use_signals)
    wl.start()
    ms = pairs[0][0]
    nw.sim.run_until_true(lambda: wl.stats.connected >= 1, timeout=60.0)
    nw.sim.run_until_true(lambda: ms.state == "idle", timeout=60.0)
    wl.stop()  # exactly one call: later arrivals would shift the phase of
    nw.sim.run(until=nw.sim.now + 1.0)  # concurrent release branches
    assert wl.stats.connected == 1
    if times:
        return [(e.time,) + e.triple() for e in nw.sim.trace.entries
                if e.kind == "msg"]
    return nw.sim.trace.triples()


def digest(triples) -> str:
    return hashlib.sha256(json.dumps(triples).encode()).hexdigest()


def test_signal_and_polling_paths_record_identical_triples():
    polling = run_workload_flow(use_signals=False)
    signals = run_workload_flow(use_signals=True)
    assert "RAS_RRQ" in {t[0] for t in signals}  # registration present
    assert "Q931_Setup" in {t[0] for t in signals}  # MO call present
    assert signals == polling


def test_same_seed_is_byte_identical_per_path():
    for use_signals in (False, True):
        first = run_workload_flow(use_signals)
        second = run_workload_flow(use_signals)
        assert digest(first) == digest(second)


def test_different_seeds_differ():
    # The flow *shape* is seed-invariant; the call arrival time is not.
    assert (run_workload_flow(True, seed=1, times=True)
            != run_workload_flow(True, seed=2, times=True))
