"""Tests for the scenario drivers and the analysis/reporting helpers."""

import pytest

from repro.core import scenarios
from repro.core.flows import FlowMismatch, FlowStep, match_flow
from repro.analysis.latency import breakdown_registration, post_dial_delay
from repro.analysis.modifications import modification_matrix
from repro.analysis.msc_chart import render_msc
from repro.analysis.report import format_table
from repro.sim.trace import TraceRecorder


class TestScenarioDrivers:
    def test_register_returns_latency(self, vgprs):
        latency = scenarios.register_ms(vgprs, vgprs.mss["MS1"])
        assert 0.05 < latency < 2.0

    def test_register_failure_raises(self, vgprs):
        from repro.errors import RegistrationError

        ms = vgprs.mss["MS1"]
        ms.ki = b"\xff" * 16  # breaks authentication
        with pytest.raises(RegistrationError):
            scenarios.register_ms(vgprs, ms, timeout=5.0)

    def test_mo_outcome_timing_ordered(self, registered):
        outcome = scenarios.call_ms_to_terminal(
            registered, registered.mss["MS1"], registered.terminals["TERM1"]
        )
        assert outcome.alerting_at is not None
        assert outcome.dialled_at < outcome.alerting_at < outcome.connected_at
        assert outcome.setup_delay > 0
        assert outcome.answer_delay >= outcome.setup_delay

    def test_mt_outcome_timing_ordered(self, registered):
        outcome = scenarios.call_terminal_to_ms(
            registered, registered.terminals["TERM1"], registered.mss["MS1"]
        )
        assert outcome.alerting_at is not None
        assert outcome.connected_at is not None

    def test_message_count_deltas(self, registered):
        before = scenarios.message_counts(registered)
        scenarios.call_ms_to_terminal(
            registered, registered.mss["MS1"], registered.terminals["TERM1"]
        )
        after = scenarios.message_counts(registered)
        delta = scenarios.delta_counts(before, after)
        # Every core element participated in call setup.
        for node in ("MS1", "BTS1", "BSC", "VMSC", "VLR", "SGSN", "GGSN", "GK"):
            assert delta.get(node, 0) > 0, node
        # The HLR is not involved in call setup beyond authentication.
        assert delta.get("HLR", 0) <= 2

    def test_settle_advances_clock(self, vgprs):
        t0 = vgprs.sim.now
        scenarios.settle(vgprs, period=2.5)
        assert vgprs.sim.now == pytest.approx(t0 + 2.5)


class TestFlowMatcher:
    def make_trace(self, *names):
        clock = {"t": 0.0}
        trace = TraceRecorder(clock=lambda: clock["t"])
        for name in names:
            clock["t"] += 1.0
            trace.record("msg", "A", "B", "i", name)
        return trace

    def test_simple_chain_matches(self):
        trace = self.make_trace("M1", "M2", "M3")
        steps = [FlowStep("1", "M1"), FlowStep("2", "M2"), FlowStep("3", "M3")]
        matched = match_flow(trace, steps)
        assert [matched[s].time for s in ("1", "2", "3")] == [1.0, 2.0, 3.0]

    def test_out_of_order_fails(self):
        trace = self.make_trace("M2", "M1")
        steps = [FlowStep("1", "M1"), FlowStep("2", "M2")]
        with pytest.raises(FlowMismatch):
            match_flow(trace, steps)

    def test_explicit_after_allows_branches(self):
        trace = self.make_trace("ROOT", "B", "A")
        steps = [
            FlowStep("root", "ROOT"),
            FlowStep("a", "A", after=("root",)),
            FlowStep("b", "B", after=("root",)),
        ]
        matched = match_flow(trace, steps)
        assert matched["a"].time == 3.0 and matched["b"].time == 2.0

    def test_missing_step_reports_candidates(self):
        trace = self.make_trace("M1")
        with pytest.raises(FlowMismatch) as err:
            match_flow(trace, [FlowStep("1", "M1"), FlowStep("2", "M2")])
        assert "M2" in str(err.value)

    def test_unknown_dependency_rejected(self):
        trace = self.make_trace("M1")
        with pytest.raises(FlowMismatch):
            match_flow(trace, [FlowStep("1", "M1", after=("nope",))])

    def test_src_dst_constraints(self):
        clock = {"t": 0.0}
        trace = TraceRecorder(clock=lambda: clock["t"])
        trace.record("msg", "X", "Y", "i", "M")
        trace.record("msg", "A", "B", "i", "M")
        matched = match_flow(trace, [FlowStep("1", "M", src="A", dst="B")])
        assert matched["1"].src == "A"

    def test_entries_not_reused(self):
        trace = self.make_trace("M", "M")
        matched = match_flow(trace, [FlowStep("1", "M"), FlowStep("2", "M")])
        assert matched["1"].time != matched["2"].time
        with pytest.raises(FlowMismatch):
            match_flow(
                trace,
                [FlowStep("1", "M"), FlowStep("2", "M"), FlowStep("3", "M")],
            )

    def test_since_scopes_the_trace(self):
        trace = self.make_trace("M", "N")
        with pytest.raises(FlowMismatch):
            match_flow(trace, [FlowStep("1", "M")], since=1.5)


class TestAnalysis:
    def test_registration_breakdown(self, vgprs):
        scenarios.register_ms(vgprs, vgprs.mss["MS1"])
        breakdown = breakdown_registration(vgprs.sim.trace)
        assert breakdown is not None
        assert breakdown.total > breakdown.gsm_phase
        assert breakdown.gprs_phase > 0
        assert breakdown.h323_phase > 0
        millis = breakdown.as_millis()
        assert millis["total_ms"] == pytest.approx(breakdown.total * 1000, rel=0.01)

    def test_breakdown_none_without_data(self):
        trace = TraceRecorder(clock=lambda: 0.0)
        assert breakdown_registration(trace) is None

    def test_post_dial_delay(self, registered):
        since = registered.sim.now
        scenarios.call_ms_to_terminal(
            registered, registered.mss["MS1"], registered.terminals["TERM1"]
        )
        pdd = post_dial_delay(registered.sim.trace, since=since)
        assert pdd is not None and 0 < pdd < 1.0

    def test_render_msc_contains_arrows(self, registered):
        text = render_msc(
            registered.sim.trace.entries,
            ["MS1", "BTS1", "BSC", "VMSC"],
            include={"Um_Location_Update_Request", "A_Location_Update"},
            col_width=30,
        )
        assert "Um_Location_Update_Request" in text
        assert ">" in text

    def test_render_msc_skips_unknown_nodes(self):
        trace = TraceRecorder(clock=lambda: 0.0)
        trace.record("msg", "GHOST", "ALSO-GHOST", "i", "M")
        text = render_msc(trace.entries, ["A", "B"])
        assert "M" not in text

    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["long-name", 2.5]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "long-name" in table
        assert "2.500" in table

    def test_modification_matrix_all_verified(self):
        rows = modification_matrix()
        assert len(rows) >= 5
        assert all(row.verified for row in rows)
