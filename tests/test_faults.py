"""Tests for :mod:`repro.faults` — plan grammar, injector semantics,
protocol recovery, PSTN fallback, and determinism (same seed + plan =>
byte-identical traces and metrics, batch or paced or parallel sweep)."""

import functools
import json

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.errors import FaultPlanError, TopologyError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkImpairmentFault,
    LinkStateFault,
    NodeCrashFault,
    apply_faults,
)
from repro.net.transactions import ReliableTransaction
from repro.sim.kernel import Simulator
from repro.sim.sweep import run_sweep, sweep_grid

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
TERM1 = "+886222000001"
PHONE1 = "+886233000001"


# ----------------------------------------------------------------------
# Plan grammar
# ----------------------------------------------------------------------
class TestPlanGrammar:
    def test_line_grammar(self):
        plan = FaultPlan.parse(
            """
            # gatekeeper outage with auto-restore
            at 120 link VMSC--GK down for 30
            at 200 node SGSN crash restart_after 15
            from 60 until 90 link BSC--VMSC loss 0.05 jitter 0.002
            """
        )
        assert plan.events == (
            LinkImpairmentFault(start=60.0, a="BSC", b="VMSC",
                                loss=0.05, jitter=0.002, until=90.0),
            LinkStateFault(at=120.0, a="VMSC", b="GK", action="down",
                           duration=30.0),
            NodeCrashFault(at=200.0, node="SGSN", restart_after=15.0),
        )

    def test_semicolons_pack_a_plan_into_one_argument(self):
        plan = FaultPlan.parse(
            "at 5 link A--B down; at 9 link A--B up; at 3 node N crash"
        )
        # Stable time-sort.
        assert [type(e).__name__ for e in plan.events] == [
            "NodeCrashFault", "LinkStateFault", "LinkStateFault",
        ]
        assert len(plan) == 3 and bool(plan)

    def test_json_form(self):
        text = json.dumps([
            {"kind": "link", "at": 120, "link": "VMSC--GK",
             "action": "down", "for": 30},
            {"kind": "node", "at": 200, "node": "SGSN",
             "restart_after": 15},
            {"kind": "impair", "from": 60, "until": 90,
             "link": "BSC--VMSC", "loss": 0.05, "jitter": 0.002},
        ])
        assert FaultPlan.parse(text) == FaultPlan.parse(
            "at 120 link VMSC--GK down for 30;"
            "at 200 node SGSN crash restart_after 15;"
            "from 60 until 90 link BSC--VMSC loss 0.05 jitter 0.002"
        )

    def test_json_wrapper_object(self):
        plan = FaultPlan.parse(
            '{"faults": [{"kind": "link", "at": 1, "link": "A--B"}]}'
        )
        assert plan.events[0].action == "down"

    def test_empty_plan(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  # just a comment\n")

    @pytest.mark.parametrize("bad", [
        "at x link A--B down",                 # bad time
        "at -1 link A--B down",                # negative time
        "at 5 link AB down",                   # no -- separator
        "at 5 link A--B sideways",             # unknown action
        "at 5 link A--B down for 0",           # non-positive duration
        "at 5 node N reboot",                  # unknown node action
        "at 5 node N crash restart_after 0",   # non-positive restart
        "at 5 pipe A--B down",                 # unknown target
        "go 5 link A--B down",                 # unknown directive
        "from 5 link A--B",                    # no loss/jitter
        "from 5 link A--B loss 1.5",           # loss > 1
        "from 5 link A--B loss",               # dangling parameter
        "from 9 until 5 link A--B loss 0.1",   # until <= from
        '[{"kind": "warp", "at": 1}]',         # unknown JSON kind
        '[{"kind": "link", "link": "A--B"}]',  # missing "at"
        '{"faults": 3}',                       # non-list JSON
        "[not json",                           # malformed JSON
    ])
    def test_rejects_bad_plans(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)


# ----------------------------------------------------------------------
# Injector semantics
# ----------------------------------------------------------------------
def _quiet_network(seed=11, **kwargs):
    nw = build_vgprs_network(seed=seed, **kwargs)
    nw.sim.run(until=0.5)
    return nw


class TestInjector:
    def test_down_for_duration_then_auto_up(self):
        nw = _quiet_network()
        link = nw.gk.link_to(nw.cloud)
        apply_faults(nw, "at 2 link GK--IPNET down for 3")
        nw.sim.run(until=2.5)
        assert not link.up
        nw.sim.run(until=5.5)
        assert link.up
        assert nw.sim.metrics.counters("fault.link_down") == {
            "fault.link_down": 1
        }
        assert nw.sim.metrics.counters("fault.link_up") == {
            "fault.link_up": 1
        }
        notes = [e.message for e in nw.sim.trace.entries
                 if e.kind == "note" and e.src == "FAULTS"]
        assert notes == ["FAULT_PLAN_ARMED", "FAULT_LINK_DOWN",
                         "FAULT_LINK_UP"]

    def test_flips_are_idempotent(self):
        nw = _quiet_network()
        apply_faults(nw, "at 1 link GK--IPNET down; at 1.5 link GK--IPNET "
                         "down; at 2 link GK--IPNET up; at 3 link "
                         "GK--IPNET up")
        nw.sim.run(until=4)
        assert nw.sim.metrics.counters("fault.link_down") == {
            "fault.link_down": 1
        }
        assert nw.sim.metrics.counters("fault.link_up") == {
            "fault.link_up": 1
        }

    def test_past_times_clamp_to_now(self):
        nw = _quiet_network()   # sim.now is already 0.5
        link = nw.gk.link_to(nw.cloud)
        apply_faults(nw, "at 0 link GK--IPNET down")
        nw.sim.run(until=nw.sim.now + 0.001)
        assert not link.up

    def test_strict_unknown_node_raises(self):
        nw = _quiet_network()
        with pytest.raises(FaultPlanError):
            apply_faults(nw, "at 1 link GK--NOWHERE down")
        with pytest.raises(FaultPlanError):
            apply_faults(nw, "at 1 node NOWHERE crash")

    def test_non_strict_counts_unresolved(self):
        nw = _quiet_network()
        apply_faults(nw, "at 1 node NOWHERE crash", strict=False)
        assert nw.sim.metrics.counters("fault.unresolved") == {
            "fault.unresolved": 1
        }

    def test_double_arm_refused(self):
        nw = _quiet_network()
        (injector,) = apply_faults(nw, "at 1 link GK--IPNET down")
        with pytest.raises(FaultPlanError):
            injector.arm()

    def test_crash_restores_exactly_the_links_it_took(self):
        nw = _quiet_network()
        gb = nw.vmsc.link_to(nw.sgsn)
        gn = nw.sgsn.link_to(nw.ggsn)
        # The Gb link is already down (independent fault) when the SGSN
        # crashes; restart must not resurrect it.
        apply_faults(
            nw,
            "at 1 link VMSC--SGSN down; "
            "at 2 node SGSN crash restart_after 2",
        )
        nw.sim.run(until=3)
        assert not gb.up and not gn.up
        nw.sim.run(until=5)
        assert not gb.up      # still down: the plan owns it
        assert gn.up          # restored by the restart
        assert nw.sim.metrics.counters("fault.node_crash") == {
            "fault.node_crash": 1
        }
        assert nw.sim.metrics.counters("fault.node_restart") == {
            "fault.node_restart": 1
        }

    def test_sgsn_crash_loses_contexts(self):
        nw = _quiet_network(seed=12)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        scenarios.register_ms(nw, ms)
        assert nw.sgsn.context_count() > 0
        t = nw.sim.now
        apply_faults(nw, f"at {t + 1} node SGSN crash restart_after 5")
        nw.sim.run(until=t + 2)
        assert nw.sgsn.context_count() == 0
        assert nw.sim.metrics.counters("SGSN.crash_contexts_lost")

    def test_impairment_loss_drops_frames(self):
        nw = _quiet_network(seed=13)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
        scenarios.register_ms(nw, ms)
        scenarios.call_ms_to_terminal(nw, ms, term)
        t = nw.sim.now
        apply_faults(nw, f"from {t} link VMSC--SGSN loss 1.0 jitter 0")
        ms.start_talking(duration=0.5)
        nw.sim.run(until=t + 1.0)
        assert term.frames_received == 0
        drops = nw.sim.metrics.counters("link.Gb.dropped_loss")
        assert drops.get("link.Gb.dropped_loss", 0) > 0

    def test_impairment_window_clears(self):
        nw = _quiet_network()
        link = nw.vmsc.link_to(nw.sgsn)
        apply_faults(nw, "from 1 until 2 link VMSC--SGSN loss 0.5")
        nw.sim.run(until=1.5)
        assert link.impairment is not None
        nw.sim.run(until=2.5)
        assert link.impairment is None
        assert nw.sim.metrics.counters("fault.impair_off") == {
            "fault.impair_off": 1
        }

    def test_name_prefix_resolution(self):
        nw = build_vgprs_network(seed=14, name_prefix="V-")
        nw.sim.run(until=0.5)
        link = nw.gk.link_to(nw.cloud)
        apply_faults(nw, "at 1 link GK--IPNET down", name_prefix="V-")
        nw.sim.run(until=1.5)
        assert not link.up


# ----------------------------------------------------------------------
# ReliableTransaction (the generic retry primitive)
# ----------------------------------------------------------------------
class TestReliableTransaction:
    def make(self, **kwargs):
        sim = Simulator(seed=0)
        sent = []
        txn = ReliableTransaction(
            sim, "t", lambda attempt: sent.append((sim.now, attempt)),
            **kwargs,
        )
        return sim, sent, txn

    def test_exponential_backoff_schedule(self):
        sim, sent, txn = self.make(timeout=1.0, backoff=2.0, max_retries=3)
        txn.start()
        sim.run(until=100)
        # Sends at 0, then after 1, 2, 4 (giving up 8 s after the last).
        assert sent == [(0.0, 1), (1.0, 2), (3.0, 3), (7.0, 4)]
        assert txn.state == "failed"
        assert sim.metrics.counters("txn.t.retries") == {"txn.t.retries": 3}
        assert sim.metrics.counters("txn.t.giveups") == {"txn.t.giveups": 1}

    def test_complete_stops_retries(self):
        sim, sent, txn = self.make(timeout=1.0)
        txn.start()
        sim.run(until=1.5)
        elapsed = txn.complete()
        assert elapsed == pytest.approx(1.5)
        sim.run(until=60)
        assert len(sent) == 2  # the initial send + one retry, no more
        assert txn.complete() is None  # duplicate responses are ignored

    def test_cancel_is_quiet(self):
        sim, sent, txn = self.make(timeout=1.0)
        txn.start()
        txn.cancel()
        sim.run(until=60)
        assert len(sent) == 1
        assert sim.metrics.counters("txn.t.giveups") == {
            "txn.t.giveups": 0
        }

    def test_give_up_callback(self):
        sim = Simulator(seed=0)
        gave_up = []
        txn = ReliableTransaction(
            sim, "t", lambda attempt: None, timeout=0.5, max_retries=0,
            on_give_up=lambda: gave_up.append(sim.now),
        )
        txn.start()
        sim.run(until=10)
        assert gave_up == [0.5]

    def test_bad_policy_rejected(self):
        sim = Simulator(seed=0)
        from repro.errors import ProtocolError
        for kwargs in ({"timeout": 0.0}, {"backoff": 0.5},
                       {"max_retries": -1}):
            with pytest.raises(ProtocolError):
                ReliableTransaction(sim, "t", lambda a: None, **kwargs)


# ----------------------------------------------------------------------
# PSTN fallback during a GK outage
# ----------------------------------------------------------------------
class TestPstnFallback:
    def build(self, seed=21):
        nw = build_vgprs_network(seed=seed, with_pstn=True)
        phone = nw.add_phone("PHONE1", PHONE1, answer_delay=0.5)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        return nw, ms, phone

    def test_add_phone_requires_with_pstn(self):
        nw = build_vgprs_network(seed=20)
        with pytest.raises(TopologyError):
            nw.add_phone("PHONE1", PHONE1)

    def test_call_during_outage_falls_back_to_pstn(self):
        nw, ms, phone = self.build()
        t = nw.sim.now
        apply_faults(nw, f"at {t + 1} link GK--IPNET down for 40")
        nw.sim.run(until=t + 3)
        ms.place_call(PHONE1)
        assert nw.sim.run_until_true(
            lambda: ms.state == "in-call", timeout=20
        )
        assert phone.answered_at is not None
        fb = nw.vmsc.fallback_for(ms.imsi)
        assert fb is not None and fb.state == "in-call"
        assert nw.sim.metrics.counters("VMSC.pstn_fallback_calls") == {
            "VMSC.pstn_fallback_calls": 1
        }
        # Voice is bridged over the trunk in both directions.
        ms.start_talking(duration=0.5)
        nw.sim.run(until=nw.sim.now + 1.0)
        assert phone.frames_received > 0
        ms.hangup()
        assert nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        assert nw.vmsc.fallback_for(ms.imsi) is None
        assert nw.sim.metrics.counters("unhandled") == {}

    def test_rehoming_after_outage_heals(self):
        nw, ms, phone = self.build(seed=22)
        t = nw.sim.now
        apply_faults(nw, f"at {t + 1} link GK--IPNET down for 10")
        nw.sim.run(until=t + 3)
        # The failed admission marks the outage and starts the retry
        # loop; once the link heals the MS re-homes to VoIP.
        ms.place_call(PHONE1)
        nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=20)
        ms.hangup()
        nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        assert nw.sim.run_until_true(
            lambda: nw.vmsc.ms_table.get(ms.imsi).gk_registered,
            timeout=120,
        )
        assert nw.sim.metrics.counters("VMSC.gk_recoveries") == {
            "VMSC.gk_recoveries": 1
        }
        mttr = nw.sim.metrics.get_histogram("fault.mttr.gk_registration")
        assert mttr is not None and mttr.count == 1
        assert mttr.mean > 0

    def test_far_end_hangup_releases_the_ms(self):
        nw, ms, phone = self.build(seed=23)
        t = nw.sim.now
        apply_faults(nw, f"at {t + 1} link GK--IPNET down")
        nw.sim.run(until=t + 3)
        ms.place_call(PHONE1)
        nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=20)
        phone.hangup()
        assert nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        assert nw.vmsc.fallback_for(ms.imsi) is None
        assert nw.sim.metrics.counters("unhandled") == {}


# ----------------------------------------------------------------------
# Determinism: same seed + plan => byte-identical traces and metrics
# ----------------------------------------------------------------------
OUTAGE_PLAN = "at 6 link GK--IPNET down for 12; from 4 until 8 link " \
              "VMSC--SGSN loss 0.2 jitter 0.001"


def _trace_dump(nw):
    return json.dumps(
        [e.to_dict() for e in nw.sim.trace.entries], default=str,
        sort_keys=True,
    )


def _hangup_if_talking(ms):
    if ms.state in ("in-call", "mo-alerting", "mt-ringing"):
        ms.hangup()


def _outage_scenario(seed, plan, paced=False):
    """A fixed scenario under *plan*: register, call into the outage,
    recover.  Returns (metrics snapshot, trace JSON) for comparison."""
    nw = build_vgprs_network(seed=seed, with_pstn=True)
    phone = nw.add_phone("PHONE1", PHONE1, answer_delay=0.5)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    apply_faults(nw, plan)
    nw.sim.schedule_at(7.0, ms.place_call, PHONE1)
    nw.sim.schedule_at(16.0, _hangup_if_talking, ms)
    if paced:
        nw.sim.run_paced(until=60.0, quantum=0.25, hook=lambda s: None)
    else:
        nw.sim.run(until=60.0)
    return nw.sim.metrics.snapshot(), _trace_dump(nw)


def outage_point(seed, plan=OUTAGE_PLAN):
    """Module-level sweep worker (picklable for --jobs N)."""
    snapshot, trace = _outage_scenario(seed, plan)
    return {"seed": seed, "trace": trace, "metrics": snapshot}


class TestDeterminism:
    def test_same_seed_and_plan_identical(self):
        a = _outage_scenario(31, OUTAGE_PLAN)
        b = _outage_scenario(31, OUTAGE_PLAN)
        assert a[0] == b[0]
        assert a[1] == b[1]

    def test_paced_matches_batch(self):
        batch = _outage_scenario(31, OUTAGE_PLAN)
        paced = _outage_scenario(31, OUTAGE_PLAN, paced=True)
        assert batch[0] == paced[0]
        assert batch[1] == paced[1]

    def test_different_plans_diverge(self):
        a = _outage_scenario(31, OUTAGE_PLAN)
        b = _outage_scenario(31, "at 6 link GK--IPNET down for 13")
        assert a[1] != b[1]

    def test_parallel_sweep_matches_serial(self):
        points = sweep_grid(seed=(41, 42, 43))
        worker = functools.partial(outage_point, plan=OUTAGE_PLAN)
        serial = run_sweep(worker, points, jobs=1)
        parallel = run_sweep(worker, points, jobs=2)
        assert [(r.point, r.value) for r in serial] == [
            (r.point, r.value) for r in parallel
        ]

    def test_arming_a_noop_plan_never_perturbs_draws(self):
        """A plan whose impairment stream is never drawn from must not
        shift any other consumer's RNG stream."""
        base = _outage_scenario(31, "")
        armed = _outage_scenario(
            31, "from 55 until 56 link VMSC--VLR loss 0.5"
        )
        from repro.faults.injector import FAULT_COUNTERS

        counters_base = dict(base[0]["counters"])
        counters_armed = dict(armed[0]["counters"])
        # Arming pre-registers the fault.* families (at zero) so scrapes
        # see stable names; strip them before comparing draws.
        for key in FAULT_COUNTERS + ("link.B.dropped_loss",):
            counters_armed.pop(key, None)
        assert counters_base == counters_armed
