"""Rendering tests: MSC charts against the golden flows, report tables.

The chart test is the figure-level check: for Figures 4-6, every arrow
of the golden flow must appear in the rendered chart, between the right
columns and pointing the right way.
"""

import pytest

from repro.analysis.msc_chart import render_msc
from repro.analysis.report import format_table, print_experiment
from repro.core import scenarios
from repro.core.flows import (
    NodeNames,
    match_flow,
    origination_flow,
    registration_flow,
    termination_flow,
)
from repro.core.network import build_vgprs_network
from repro.sim.trace import TraceEntry

NODES = ["MS1", "BTS1", "BSC", "VMSC", "VLR", "HLR", "SGSN", "GGSN",
         "IPNET", "GK", "TERM1"]
COL_WIDTH = 12


def entry(time, src, dst, message, kind="msg"):
    return TraceEntry(time, kind, src, dst, "if", message, {})


class TestRenderMsc:
    def test_arrow_directions(self):
        chart = render_msc(
            [entry(1.0, "A", "B", "Fwd"), entry(2.0, "B", "A", "Back")],
            ["A", "B"],
        )
        fwd = next(l for l in chart.splitlines() if "Fwd" in l)
        back = next(l for l in chart.splitlines() if "Back" in l)
        assert fwd.rstrip().endswith(">") and "|" in fwd
        assert "<" in back and back.rstrip().endswith("|")

    def test_include_filters_and_kinds_skipped(self):
        chart = render_msc(
            [entry(1.0, "A", "B", "Keep"),
             entry(2.0, "A", "B", "Drop"),
             entry(3.0, "A", "B", "note-ish", kind="note"),
             entry(4.0, "A", "C", "UnknownNode")],
            ["A", "B"],
            include={"Keep", "note-ish", "UnknownNode"},
        )
        assert "Keep" in chart
        assert "Drop" not in chart
        assert "note-ish" not in chart      # only kind == "msg" is drawn
        assert "UnknownNode" not in chart   # C is not a column

    def test_label_truncation(self):
        chart = render_msc(
            [entry(1.0, "A", "B", "A_Very_Long_Message_Name")],
            ["A", "B"], max_label=6,
        )
        assert "A_Very" in chart
        assert "A_Very_Long" not in chart

    def test_header_lists_nodes(self):
        chart = render_msc([], ["MS1", "VMSC"])
        header = chart.splitlines()[0]
        assert "MS1" in header and "VMSC" in header


class TestGoldenFlowCharts:
    """Every golden-flow triple must appear in the rendered figure."""

    @pytest.fixture(scope="class")
    def charts(self):
        names = NodeNames()
        nw = build_vgprs_network()
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001",
                       answer_delay=0.6)
        term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.6)
        nw.sim.run(until=0.5)
        out = {}
        for key, action, flow in (
            ("registration", lambda: scenarios.register_ms(nw, ms),
             registration_flow(names)),
            ("origination",
             lambda: scenarios.call_ms_to_terminal(nw, ms, term),
             origination_flow(names)),
        ):
            out[key] = self._render(nw, action, flow)
        scenarios.hangup_from_ms(nw, ms)
        nw.sim.run(until=nw.sim.now + 1.0)
        out["termination"] = self._render(
            nw, lambda: scenarios.call_terminal_to_ms(nw, term, ms),
            termination_flow(names))
        return out

    @staticmethod
    def _render(nw, action, flow):
        since = nw.sim.now
        action()
        matched = match_flow(nw.sim.trace, flow, since=since)
        entries = [e for e in nw.sim.trace.entries if e.time >= since]
        chart = render_msc(entries, NODES,
                           include={s.message for s in flow},
                           col_width=COL_WIDTH)
        return chart, matched

    def _assert_triple_drawn(self, chart, matched_entry):
        """The chart has a line at the entry's time whose arrow spans the
        src and dst columns in the right direction and carries the label."""
        src_i = NODES.index(matched_entry.src)
        dst_i = NODES.index(matched_entry.dst)
        lo, hi = sorted((src_i, dst_i))
        start = 9 + lo * COL_WIDTH + COL_WIDTH // 2
        stamp = f"{matched_entry.time:8.3f} "
        # Labels are clipped to the arrow body (span between the columns
        # minus the arrowheads), so only that prefix is visible.
        inner = (hi - lo) * COL_WIDTH - 2
        label = matched_entry.message[:38][:inner]
        for line in chart.splitlines():
            if not line.startswith(stamp) or label not in line:
                continue
            if line.index(label) < start:
                continue
            if src_i < dst_i:
                assert line[start] == "|" and line.rstrip().endswith(">")
            else:
                assert line[start] == "<" and line.rstrip().endswith("|")
            return
        pytest.fail(
            f"triple {matched_entry.src}->{matched_entry.dst} "
            f"{matched_entry.message!r} at t={matched_entry.time} "
            f"not drawn in chart"
        )

    @pytest.mark.parametrize("figure", ["registration", "origination",
                                        "termination"])
    def test_every_flow_triple_is_drawn(self, charts, figure):
        chart, matched = charts[figure]
        assert matched  # match_flow found every step
        for step_entry in matched.values():
            self._assert_triple_drawn(chart, step_entry)


class TestReport:
    def test_format_table_aligns_and_formats(self):
        table = format_table(
            ["metric", "value"],
            [["setup delay", 0.61234], ["frames", 50]],
            title="E1",
        )
        lines = table.splitlines()
        assert lines[0] == "E1" and lines[1] == "=="
        assert lines[2].startswith("metric")
        assert set(lines[3]) <= {"-", " "}
        assert "0.612" in table   # floats render to 3 decimals
        assert "50" in table
        widths = {len(l) for l in lines[2:]}
        assert len(widths) <= 2   # header/ruler/rows share column widths

    def test_report_renders_completed_call(self, capsys):
        nw = build_vgprs_network()
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
        term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.6)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        outcome = scenarios.call_ms_to_terminal(nw, ms, term)
        ms.start_talking(duration=1.0)
        nw.sim.run(until=nw.sim.now + 1.5)
        scenarios.hangup_from_ms(nw, ms)
        nw.sim.run(until=nw.sim.now + 1.0)

        table = format_table(
            ["metric", "value"],
            [["answer delay (s)", outcome.answer_delay],
             ["voice frames", term.frames_received],
             ["charging records", len(nw.gk.call_records)]],
            title="completed call",
        )
        print_experiment("E1", "calls complete through the GPRS core",
                         table, "PASS")
        out = capsys.readouterr().out
        assert "# Experiment E1" in out
        assert "# Paper claim: calls complete through the GPRS core" in out
        assert "completed call" in out and "voice frames" in out
        assert f"{outcome.answer_delay:.3f}" in out
        assert out.strip().endswith("VERDICT: PASS")
