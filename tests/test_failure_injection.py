"""Failure-injection tests: core elements break mid-procedure and the
system must degrade gracefully (no crashes, no stuck states, counters
tell the story).  Faults are injected through the declarative
:mod:`repro.faults` plans, so every scenario here is expressible on the
command line as ``--faults "..."`` too."""

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.faults import apply_faults
from repro.gprs.ggsn import Ggsn

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
TERM1 = "+886222000001"


class TestGatekeeperUnreachable:
    def make(self):
        nw = build_vgprs_network(seed=61)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        # Sever the gatekeeper from the cloud before anything registers.
        apply_faults(nw, "at 0 link GK--IPNET down")
        return nw, ms

    def test_gsm_registration_still_completes(self):
        nw, ms = self.make()
        ms.power_on()
        assert nw.sim.run_until_true(lambda: ms.registered, timeout=30)
        assert nw.sim.metrics.counters("VMSC.gk_registration_timeouts") == {
            "VMSC.gk_registration_timeouts": 1
        }

    def test_ms_table_marks_voip_unavailable(self):
        nw, ms = self.make()
        ms.power_on()
        nw.sim.run_until_true(lambda: ms.registered, timeout=30)
        entry = nw.vmsc.ms_table.get(ms.imsi)
        assert entry is not None
        assert not entry.gk_registered

    def test_call_attempt_fails_cleanly(self):
        nw, ms = self.make()
        term_alias = TERM1
        ms.power_on()
        nw.sim.run_until_true(lambda: ms.registered, timeout=30)
        from repro.identities import E164Number

        ms.place_call(E164Number.parse(term_alias))
        nw.sim.run(until=nw.sim.now + 10)
        assert ms.state == "idle"
        assert nw.sim.metrics.counters("VMSC.calls_without_voip") == {
            "VMSC.calls_without_voip": 1
        }
        assert nw.sim.metrics.counters("unhandled") == {}


class TestGgsnExhaustion:
    def test_signalling_pdp_reject_degrades_to_gsm_only(self):
        nw = build_vgprs_network(seed=62)
        # Replace the address pool with an empty one.
        nw.ggsn._max_dynamic = 0
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        ms.power_on()
        assert nw.sim.run_until_true(lambda: ms.registered, timeout=30)
        assert nw.sim.metrics.counters("VMSC.voip_unavailable") == {
            "VMSC.voip_unavailable": 1
        }
        entry = nw.vmsc.ms_table.get(ms.imsi)
        assert not entry.signalling_ready

    def test_voice_pdp_reject_releases_the_call(self):
        nw = build_vgprs_network(seed=63)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        # Voice context (the second one) will be refused.
        nw.sgsn.max_contexts = nw.sgsn.context_count()
        ms.place_call(term.alias)
        nw.sim.run(until=nw.sim.now + 10)
        assert ms.state == "idle"
        assert nw.vmsc.calls == {}
        assert nw.sim.metrics.counters("VMSC.pdp_rejects") == {
            "VMSC.pdp_rejects": 1
        }
        # The far end was released too.
        assert term.calls == {}


class TestLinkFailuresMidCall:
    def test_gb_down_during_call_drops_voice_not_state(self):
        nw = build_vgprs_network(seed=64)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        scenarios.call_ms_to_terminal(nw, ms, term)
        t = nw.sim.now
        apply_faults(nw, f"at {t} link VMSC--SGSN down for 1.5")
        ms.start_talking(duration=0.5)
        nw.sim.run(until=t + 1.0)
        assert term.frames_received == 0  # media lost
        drops = nw.sim.metrics.counters("link.Gb.dropped_down")
        assert drops.get("link.Gb.dropped_down", 0) > 0
        # Radio-side release still works once the plan restores the link
        # (the A/B interfaces were intact throughout).
        nw.sim.run(until=t + 1.6)
        assert nw.sim.metrics.counters("fault.link_up") == {
            "fault.link_up": 1
        }
        ms.hangup()
        assert nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)

    def test_radio_link_loss_during_mt_page(self):
        nw = build_vgprs_network(seed=65)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        # MS vanishes from coverage.
        apply_faults(nw, f"at {nw.sim.now} link MS1--BTS1 down")
        ref = term.place_call(ms.msisdn)
        nw.sim.run(until=nw.sim.now + 20)
        # Page timer expired, the caller was released.
        assert nw.sim.metrics.counters("VMSC.page_timeouts") == {
            "VMSC.page_timeouts": 1
        }
        assert ref not in term.calls
        assert nw.vmsc.calls == {}


class TestRecovery:
    def test_reregistration_restores_voip_after_gk_returns(self):
        nw = build_vgprs_network(seed=66)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
        apply_faults(nw, "at 0 link GK--IPNET down for 15")
        nw.sim.run(until=0.5)
        ms.power_on()
        nw.sim.run_until_true(lambda: ms.registered, timeout=30)
        assert not nw.vmsc.ms_table.get(ms.imsi).gk_registered
        # The gatekeeper comes back at t=15; the VMSC's backed-off
        # re-registration loop re-homes the MS without waiting for a
        # fresh location update.
        nw.sim.run(until=15.5)
        term.register()
        assert nw.sim.run_until_true(
            lambda: nw.vmsc.ms_table.get(ms.imsi).gk_registered,
            timeout=60,
        )
        assert nw.sim.metrics.counters("VMSC.gk_recoveries") == {
            "VMSC.gk_recoveries": 1
        }
        mttr = nw.sim.metrics.get_histogram("fault.mttr.gk_registration")
        assert mttr is not None and mttr.count == 1
        outcome = scenarios.call_ms_to_terminal(nw, ms, term)
        assert outcome.connected_at is not None


class TestGkOutageRecoveryMatrix:
    """GK outage starting at three phases of service × outage that heals
    or persists.  Every cell must leave the system unwedged (MS idle, no
    stuck VMSC call state, no unhandled messages); a healed outage must
    additionally re-home the MS automatically."""

    def build(self, seed):
        nw = build_vgprs_network(seed=seed)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
        nw.sim.run(until=0.5)
        return nw, ms, term

    def assert_clean(self, nw, ms):
        assert ms.state == "idle"
        assert nw.vmsc.calls == {}
        assert nw.sim.metrics.counters("unhandled") == {}

    def place_failing_call(self, nw, ms):
        """A call attempt during the outage: admission times out and the
        call is released cleanly (no PSTN trunk here, so no fallback)."""
        before = nw.sim.metrics.counters("VMSC.calls_without_voip").get(
            "VMSC.calls_without_voip", 0
        )
        ms.place_call(TERM1)
        assert nw.sim.run_until_true(lambda: ms.state == "idle", timeout=20)
        nw.sim.run(until=nw.sim.now + 6.0)  # let any admission guard fire
        after = nw.sim.metrics.counters("VMSC.calls_without_voip").get(
            "VMSC.calls_without_voip", 0
        )
        assert after == before + 1

    @pytest.mark.parametrize("recovers", [True, False])
    def test_outage_before_registration(self, recovers):
        nw, ms, term = self.build(seed=81 if recovers else 82)
        plan = "at 0 link GK--IPNET down"
        if recovers:
            plan += " for 20"
        apply_faults(nw, plan)
        ms.power_on()
        assert nw.sim.run_until_true(lambda: ms.registered, timeout=30)
        assert nw.sim.metrics.counters("VMSC.gk_registration_timeouts") == {
            "VMSC.gk_registration_timeouts": 1
        }
        if recovers:
            assert nw.sim.run_until_true(
                lambda: nw.vmsc.ms_table.get(ms.imsi).gk_registered,
                timeout=60,
            )
            assert nw.sim.metrics.counters("VMSC.gk_recoveries") == {
                "VMSC.gk_recoveries": 1
            }
            term.register()
            nw.sim.run(until=nw.sim.now + 1.0)
            outcome = scenarios.call_ms_to_terminal(nw, ms, term)
            assert outcome.connected_at is not None
            scenarios.hangup_from_ms(nw, ms)
        else:
            # Retries back off then give up; the MS stays GSM-only and
            # call attempts keep failing cleanly.
            nw.sim.run(until=300.0)
            assert nw.sim.metrics.counters("VMSC.gk_rereg.giveups") == {
                "VMSC.gk_rereg.giveups": 1
            }
            assert not nw.vmsc.ms_table.get(ms.imsi).gk_registered
            self.place_failing_call(nw, ms)
        self.assert_clean(nw, ms)

    @pytest.mark.parametrize("recovers", [True, False])
    def test_outage_mid_setup(self, recovers):
        nw, ms, term = self.build(seed=83 if recovers else 84)
        scenarios.register_ms(nw, ms)
        t = nw.sim.now
        plan = f"at {t} link GK--IPNET down"
        if recovers:
            plan += " for 12"
        apply_faults(nw, plan)
        nw.sim.run(until=t + 0.1)
        # The ARQ for this call is lost; the admission guard detects the
        # outage and releases the call cleanly.
        self.place_failing_call(nw, ms)
        assert nw.sim.metrics.counters("VMSC.admission_timeouts") == {
            "VMSC.admission_timeouts": 1
        }
        if recovers:
            assert nw.sim.run_until_true(
                lambda: nw.vmsc.ms_table.get(ms.imsi).gk_registered,
                timeout=60,
            )
            outcome = scenarios.call_ms_to_terminal(nw, ms, term)
            assert outcome.connected_at is not None
            scenarios.hangup_from_ms(nw, ms)
        else:
            nw.sim.run(until=nw.sim.now + 10.0)
            assert not nw.vmsc.ms_table.get(ms.imsi).gk_registered
            self.place_failing_call(nw, ms)
        self.assert_clean(nw, ms)

    @pytest.mark.parametrize("recovers", [True, False])
    def test_outage_mid_call(self, recovers):
        nw, ms, term = self.build(seed=85 if recovers else 86)
        scenarios.register_ms(nw, ms)
        scenarios.call_ms_to_terminal(nw, ms, term)
        t = nw.sim.now
        plan = f"at {t} link GK--IPNET down"
        if recovers:
            plan += " for 8"
        apply_faults(nw, plan)
        # The established call does not traverse the gatekeeper: media
        # keeps flowing and release works (the DRQ to the GK is
        # fire-and-forget).
        ms.start_talking(duration=0.5)
        nw.sim.run(until=t + 1.0)
        assert term.frames_received > 0
        scenarios.hangup_from_ms(nw, ms)
        if recovers:
            nw.sim.run(until=t + 9.0)
            outcome = scenarios.call_ms_to_terminal(nw, ms, term)
            assert outcome.connected_at is not None
            scenarios.hangup_from_ms(nw, ms)
        else:
            # The next call attempt discovers the outage via the
            # admission guard and fails cleanly.
            self.place_failing_call(nw, ms)
            assert nw.sim.metrics.counters("VMSC.admission_timeouts") == {
                "VMSC.admission_timeouts": 1
            }
        self.assert_clean(nw, ms)


class TestRadioCongestion:
    def test_mo_caller_rejected_when_cell_full(self):
        nw = build_vgprs_network(seed=67, tch_capacity=0)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        from repro.identities import E164Number

        ms.place_call(E164Number.parse(TERM1))
        assert nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        assert nw.sim.metrics.counters("MS1.calls_rejected") == {
            "MS1.calls_rejected": 1
        }
        assert nw.sim.metrics.counters("VMSC.assignment_failures") == {
            "VMSC.assignment_failures": 1
        }

    def test_caller_can_retry_after_congestion_clears(self):
        nw = build_vgprs_network(seed=68, tch_capacity=0)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        from repro.identities import E164Number

        ms.place_call(E164Number.parse(TERM1))
        nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        nw.bscs[0].tch_capacity = 8
        outcome = scenarios.call_ms_to_terminal(nw, ms, term)
        assert outcome.connected_at is not None

    def test_mt_page_access_congestion_releases_caller(self):
        nw = build_vgprs_network(seed=69, tch_capacity=0)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        ref = term.place_call(ms.msisdn)
        nw.sim.run(until=nw.sim.now + 15)
        # The VMSC failed the assignment after the page and released the
        # caller cleanly.
        assert ref not in term.calls
        assert nw.vmsc.calls == {}
        assert nw.sim.metrics.counters("VMSC.assignment_failures")

    def test_paged_ms_returns_to_idle_after_congestion(self):
        nw = build_vgprs_network(seed=70, tch_capacity=0)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        term.place_call(ms.msisdn)
        nw.sim.run(until=nw.sim.now + 15)
        assert ms.state == "idle"


class TestReviewRegressions:
    """Regression tests for review findings."""

    def test_call_refs_unique_across_endpoints(self):
        """Two terminals whose aliases share the last digits must not
        collide at the gatekeeper."""
        from repro.core.network import build_vgprs_network

        nw = build_vgprs_network(seed=75)
        t1 = nw.add_terminal("TA", "+886222000001", answer_delay=0.2)
        t2 = nw.add_terminal("TB", "+886333000001", answer_delay=0.2)
        t3 = nw.add_terminal("TC", "+886444000009", answer_delay=0.2)
        t4 = nw.add_terminal("TD", "+886555000009", answer_delay=0.2)
        nw.sim.run(until=0.5)
        r1 = t1.place_call(t3.alias)
        r2 = t2.place_call(t4.alias)
        assert r1 != r2
        assert nw.sim.run_until_true(
            lambda: r1 in t1.calls and t1.calls[r1].state == "in-call"
            and r2 in t2.calls and t2.calls[r2].state == "in-call",
            timeout=10,
        )
        # Two distinct admission records, not one merged record.
        assert len(nw.gk.active_calls) == 2

    def test_vlr_rejects_overlapping_procedures(self):
        """A second security procedure for the same IMSI is refused
        instead of hijacking the pending challenge."""
        from repro.identities import IMSI
        from repro.core.network import build_vgprs_network
        from repro.packets.map import (
            ERR_SYSTEM_FAILURE,
            MapProcessAccessRequest,
            MapProcessAccessRequestAck,
        )
        from repro.net.node import Node, handles

        nw = build_vgprs_network(seed=76)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        scenarios.register_ms(nw, ms)

        # Open a procedure directly, then fire a colliding request.
        from repro.gsm.vlr import _Procedure

        nw.vlr._procedures[ms.imsi] = _Procedure(
            kind="access", imsi=ms.imsi, msc_name="VMSC", invoke_id=999
        )
        got = []

        class Probe(Node):
            @handles(MapProcessAccessRequestAck)
            def on_ack(self, msg, src, interface):
                got.append(msg)

        probe = nw.net.add(Probe(nw.sim, "PROBE"))
        nw.net.connect(probe, nw.vlr, "B", 0.001)
        probe.send(nw.vlr, MapProcessAccessRequest(
            invoke_id=5, imsi=ms.imsi, access_type=1,
        ))
        nw.sim.run(until=nw.sim.now + 1)
        assert got and got[0].error == ERR_SYSTEM_FAILURE
        assert nw.sim.metrics.counters("VLR.procedure_collisions") == {
            "VLR.procedure_collisions": 1
        }

    def test_paged_queue_is_bounded(self):
        from repro.core.baseline_3gtr import build_3gtr_network

        nw = build_3gtr_network(seed=77)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        term = nw.add_terminal("TERM1", TERM1)
        nw.sim.run(until=0.5)
        ms.power_on()
        nw.sim.run_until_true(lambda: ms.registered, timeout=30)
        # MS vanishes; flood its (active-context-free) static address.
        nw.sim.run(until=nw.sim.now + 6.0)  # fall to STANDBY
        ms.link_to(nw.btss[0]).up = False
        from repro.packets.base import Raw

        for _ in range(200):
            term.send_ip(ms.static_ip, Raw(data=b"x"), dport=1720)
        nw.sim.run(until=nw.sim.now + 10)
        # Buffering is bounded at both buffering points: the GGSN's
        # notification buffer and the SGSN's paging queue.
        state = nw.ggsn._addresses[ms.static_ip]
        assert len(state.buffered) <= 64
        assert nw.sim.metrics.counters("GGSN.notify_buffer_drops")
        mm = nw.sgsn.mm_contexts[ms.imsi]
        assert len(mm.paged_queue) <= 64
