"""Inter-SGSN routing-area update (GSM 03.60 §6.9): context transfer
over Gn and GGSN tunnel re-pointing, exercised in the 3G TR network."""

import pytest

from repro.core.baseline_3gtr import build_3gtr_network
from repro.net.interfaces import Interface

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
TERM1 = "+886222000001"


@pytest.fixture
def two_areas():
    nw = build_3gtr_network(seed=95)
    sgsn2, bsc2, bts2 = nw.add_routing_area("RA-2")
    ms = nw.add_ms("MS1", IMSI1, MSISDN1)
    nw.net.connect(ms, bts2, Interface.UM, nw.latencies.um, wire_fidelity=True)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=0.3)
    nw.sim.run(until=0.5)
    ms.power_on()
    assert nw.sim.run_until_true(lambda: ms.registered, timeout=30)
    return nw, sgsn2, bts2, ms, term


def rau_done(nw):
    return nw.sim.metrics.counters("MS1.rau_accepted")


class TestInterSgsnRau:
    def test_rai_maps_cross_wired(self, two_areas):
        nw, sgsn2, _, _, _ = two_areas
        assert nw.sgsn.rai_map["RA-2"] == sgsn2.name
        assert sgsn2.rai_map["RA-1"] == nw.sgsn.name

    def test_contexts_move_between_sgsns(self, two_areas):
        nw, sgsn2, bts2, ms, term = two_areas
        ms.place_call(term.alias)
        nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=30)
        assert nw.sgsn.context_count() == 1
        ms.move_to(bts2.name, "RA-2")
        assert nw.sim.run_until_true(lambda: rau_done(nw), timeout=10)
        assert nw.sgsn.context_count() == 0
        assert sgsn2.context_count() == 1
        counters = nw.sim.metrics.counters("SGSN")
        assert counters["SGSN.contexts_transferred_out"] == 1
        assert counters["SGSN-RA-2.contexts_transferred_in"] == 1

    def test_ggsn_repointed_with_update_pdp(self, two_areas):
        nw, sgsn2, bts2, ms, term = two_areas
        ms.place_call(term.alias)
        nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=30)
        since = nw.sim.now
        ms.move_to(bts2.name, "RA-2")
        nw.sim.run_until_true(lambda: rau_done(nw), timeout=10)
        updates = nw.sim.trace.messages(
            name="Update_PDP_Context_Request", since=since
        )
        assert updates and updates[0].dst == "GGSN"
        ctx = nw.ggsn.pdp_contexts[(ms.imsi, 5)]
        assert ctx.sgsn_name == sgsn2.name

    def test_media_flows_through_new_path_after_rau(self, two_areas):
        nw, sgsn2, bts2, ms, term = two_areas
        ms.place_call(term.alias)
        nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=30)
        ms.move_to(bts2.name, "RA-2")
        nw.sim.run_until_true(lambda: rau_done(nw), timeout=10)
        ms.start_talking(duration=0.5)
        nw.sim.run(until=nw.sim.now + 1.5)
        assert term.frames_received == 25
        # Downlink reaches the MS through the new SGSN too.
        ref = next(iter(term.calls))
        term.start_talking(ref, duration=0.5)
        nw.sim.run(until=nw.sim.now + 1.5)
        assert ms.frames_received == 25

    def test_idle_rau_moves_only_mm_context(self, two_areas):
        nw, sgsn2, bts2, ms, _ = two_areas
        nw.sim.run(until=nw.sim.now + 1.0)  # PDP torn down post-registration
        assert nw.sgsn.context_count() == 0
        ms.move_to(bts2.name, "RA-2")
        assert nw.sim.run_until_true(lambda: rau_done(nw), timeout=10)
        assert ms.imsi in sgsn2.mm_contexts
        assert ms.imsi not in nw.sgsn.mm_contexts
        assert sgsn2.context_count() == 0

    def test_mt_call_after_idle_rau(self, two_areas):
        """The old SGSN is gone from the picture: the GGSN must notify
        the *new* SGSN for the next incoming call."""
        nw, sgsn2, bts2, ms, term = two_areas
        nw.sim.run(until=nw.sim.now + 1.0)
        ms.move_to(bts2.name, "RA-2")
        nw.sim.run_until_true(lambda: rau_done(nw), timeout=10)
        # Point the provisioning at the new SGSN, as the HLR-driven
        # lookup would after the location change.
        nw.ggsn.provision_static(ms.imsi, ms.static_ip, sgsn2.name)
        nw.sim.run(until=nw.sim.now + 6.0)
        ref = term.place_call(ms.msisdn)
        assert nw.sim.run_until_true(
            lambda: ref in term.calls and term.calls[ref].state == "in-call",
            timeout=30,
        )

    def test_unknown_old_area_counted(self, two_areas):
        nw, sgsn2, bts2, ms, _ = two_areas
        nw.sim.run(until=nw.sim.now + 1.0)
        ms.routing_area = "RA-NOWHERE"
        ms.move_to(bts2.name, "RA-2")
        nw.sim.run(until=nw.sim.now + 5.0)
        assert nw.sim.metrics.counters("SGSN-RA-2.rau_unknown") == {
            "SGSN-RA-2.rau_unknown": 1
        }

    def test_intra_sgsn_rau_is_local(self, two_areas):
        nw, _, _, ms, _ = two_areas
        since = nw.sim.now
        ms.move_to(ms.serving_bts, "RA-1")  # same area
        assert nw.sim.run_until_true(lambda: rau_done(nw), timeout=10)
        assert not nw.sim.trace.messages(name="SGSN_Context_Request",
                                         since=since)
