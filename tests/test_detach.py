"""Tests for the IMSI-detach (power-off) lifecycle — the mirror image of
Figure 4's registration."""

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.errors import ProtocolError

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
TERM1 = "+886222000001"


@pytest.fixture
def attached():
    nw = build_vgprs_network(seed=71)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=0.4)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=0.4)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    return nw, ms, term


class TestDetach:
    def test_detach_indication_reaches_vlr(self, attached):
        nw, ms, _ = attached
        ms.power_off()
        nw.sim.run(until=nw.sim.now + 2.0)
        assert not nw.vlr.visitor(ms.imsi).attached
        assert nw.sim.trace.first("IMSI_Detach_Indication") is not None
        assert nw.sim.trace.first("MAP_Detach_IMSI") is not None

    def test_gatekeeper_unregistered(self, attached):
        nw, ms, _ = attached
        ms.power_off()
        nw.sim.run(until=nw.sim.now + 2.0)
        assert nw.gk.resolve(ms.msisdn) is None
        assert nw.sim.trace.first("RAS_URQ") is not None

    def test_pdp_contexts_and_attach_released(self, attached):
        nw, ms, _ = attached
        ms.power_off()
        nw.sim.run(until=nw.sim.now + 2.0)
        assert nw.sgsn.context_count() == 0
        assert ms.imsi not in nw.sgsn.mm_contexts
        entry = nw.vmsc.ms_table.get(ms.imsi)
        assert not entry.gprs_attached
        assert not entry.signalling_ready

    def test_mt_call_to_detached_ms_rejected(self, attached):
        nw, ms, term = attached
        ms.power_off()
        nw.sim.run(until=nw.sim.now + 2.0)
        ref = term.place_call(ms.msisdn)
        nw.sim.run(until=nw.sim.now + 10.0)
        assert ref not in term.calls  # ARJ: alias unknown at the GK

    def test_power_cycle_restores_full_service(self, attached):
        nw, ms, term = attached
        ms.power_off()
        nw.sim.run(until=nw.sim.now + 2.0)
        ms.power_on()
        assert nw.sim.run_until_true(lambda: ms.registered, timeout=30)
        outcome = scenarios.call_terminal_to_ms(nw, term, ms)
        assert outcome.connected_at is not None

    def test_power_off_during_call_rejected(self, attached):
        nw, ms, term = attached
        scenarios.call_ms_to_terminal(nw, ms, term)
        with pytest.raises(ProtocolError):
            ms.power_off()

    def test_power_off_when_already_off_is_silent(self):
        nw = build_vgprs_network(seed=72)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        ms.power_off()  # never powered on; nothing transmitted
        nw.sim.run(until=1.0)
        assert nw.sim.trace.first("IMSI_Detach_Indication") is None

    def test_detach_is_unacknowledged(self, attached):
        """The MS is off; the network must not try to answer."""
        nw, ms, _ = attached
        ms.power_off()
        nw.sim.run(until=nw.sim.now + 3.0)
        downlink = nw.sim.trace.messages(dst="MS1",
                                         since=nw.sim.now - 2.9)
        assert downlink == []
        assert nw.sim.metrics.counters("unhandled") == {}
