"""Integration tests for the 3G TR 23.923 baseline and the Section-6
comparisons (experiments E8/E9 foundations)."""

import pytest

from repro.core import scenarios
from repro.core.baseline_3gtr import build_3gtr_network
from repro.core.network import LatencyProfile, build_vgprs_network

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
TERM1 = "+886222000001"


@pytest.fixture
def tgtr():
    nw = build_3gtr_network(seed=41)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=0.5)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=0.5)
    nw.sim.run(until=0.5)
    ms.power_on()
    assert nw.sim.run_until_true(lambda: ms.registered, timeout=30)
    nw.sim.run(until=nw.sim.now + 1.0)  # let the PDP deactivation land
    return nw, ms, term


class TestRegistration3gtr:
    def test_pdp_deactivated_after_registration(self, tgtr):
        """3G TR fig. 7 step 6: 'the PDP context is deactivated'."""
        nw, ms, _ = tgtr
        assert ms.registered
        assert not ms.pdp_active
        assert nw.sgsn.context_count() == 0

    def test_gk_keeps_static_address(self, tgtr):
        nw, ms, _ = tgtr
        reg = nw.gk.resolve(ms.msisdn)
        assert reg is not None and reg.signal_address == ms.static_ip

    def test_ms_is_h323_capable(self, tgtr):
        _, ms, _ = tgtr
        assert hasattr(ms, "_send_h323")  # the modified handset


class TestCalls3gtr:
    def test_mo_call_activates_context_per_call(self, tgtr):
        nw, ms, term = tgtr
        activations_before = nw.sim.metrics.counters("SGSN.pdp_activations")
        ms.place_call(term.alias)
        assert nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=30)
        after = nw.sim.metrics.counters("SGSN.pdp_activations")
        assert after["SGSN.pdp_activations"] == (
            activations_before["SGSN.pdp_activations"] + 1
        )
        ms.hangup()
        nw.sim.run(until=nw.sim.now + 2)
        assert nw.sgsn.context_count() == 0

    def test_mt_call_uses_network_requested_activation(self, tgtr):
        nw, ms, term = tgtr
        ref = term.place_call(ms.msisdn)
        assert nw.sim.run_until_true(
            lambda: ref in term.calls and term.calls[ref].state == "in-call",
            timeout=30,
        )
        assert nw.sim.metrics.counters("MS1.network_requested_pdp") == {
            "MS1.network_requested_pdp": 1
        }
        assert nw.sim.metrics.counters("GGSN.pdu_notifications")

    def test_voice_rides_the_packet_channel(self, tgtr):
        nw, ms, term = tgtr
        ms.place_call(term.alias)
        nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=30)
        ms.start_talking(duration=0.5)
        nw.sim.run(until=nw.sim.now + 1.5)
        assert term.frames_received == 25
        # The shared channel queued at least the voice frames.
        pch = nw.sim.metrics.get_histogram("BTS1.pch_delay_up")
        assert pch is not None and pch.count > 25

    def test_busy_ms_rejects_second_call(self, tgtr):
        nw, ms, term = tgtr
        ms.place_call(term.alias)
        nw.sim.run_until_true(lambda: ms.state == "in-call", timeout=30)
        term2 = nw.add_terminal("TERM2", "+886222000002")
        nw.sim.run(until=nw.sim.now + 0.5)
        ref = term2.place_call(ms.msisdn)
        nw.sim.run(until=nw.sim.now + 10)
        assert ref not in term2.calls
        assert ms.state == "in-call"


class TestSection6Comparisons:
    """The quantitative versions of the paper's qualitative claims."""

    @staticmethod
    def _setup_transport_delay(nw, place_call):
        """Time from the caller handing Q.931 Setup to the network until
        the called side's endpoint receives it — the component the paper
        attributes to PDP-context handling (call procedures on the radio
        are common to both architectures and excluded)."""
        t0 = nw.sim.now
        place_call()
        trace = nw.sim.trace
        nw.sim.run_until_true(
            lambda: trace.first("Q931_Call_Proceeding") is not None
            and trace.first("Q931_Call_Proceeding").time >= t0,
            timeout=30,
        )
        setups = trace.messages(name="Q931_Setup", since=t0)
        return setups[-1].time - setups[0].time

    def _vgprs_mt_setup_delay(self, latencies):
        nw = build_vgprs_network(seed=42, latencies=latencies)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=5.0)
        term = nw.add_terminal("TERM1", TERM1)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        nw.sim.run(until=nw.sim.now + 6.0)  # idle: paper keeps context up
        nw.sim.trace.clear()
        return self._setup_transport_delay(nw, lambda: term.place_call(ms.msisdn))

    def _tgtr_mt_setup_delay(self, latencies):
        nw = build_3gtr_network(seed=42, latencies=latencies)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=5.0)
        term = nw.add_terminal("TERM1", TERM1)
        nw.sim.run(until=0.5)
        ms.power_on()
        nw.sim.run_until_true(lambda: ms.registered, timeout=30)
        nw.sim.run(until=nw.sim.now + 6.0)  # idle: context torn down
        nw.sim.trace.clear()
        return self._setup_transport_delay(nw, lambda: term.place_call(ms.msisdn))

    def test_mt_setup_path_faster_in_vgprs(self):
        """Section 6: 'the call path can be quickly established because
        the PDP context is already activated' — vs. 3G TR, where the
        Setup waits for PDU notification, GPRS paging and activation."""
        lat = LatencyProfile()
        vgprs = self._vgprs_mt_setup_delay(lat)
        tgtr = self._tgtr_mt_setup_delay(lat)
        assert vgprs < tgtr
        assert tgtr > 3 * vgprs  # not marginal: activation dominates

    def test_setup_gap_grows_with_core_latency(self):
        lat1 = LatencyProfile()
        lat4 = LatencyProfile().scaled_core(4.0)
        gap1 = self._tgtr_mt_setup_delay(lat1) - self._vgprs_mt_setup_delay(lat1)
        gap4 = self._tgtr_mt_setup_delay(lat4) - self._vgprs_mt_setup_delay(lat4)
        assert gap4 > gap1

    def test_idle_context_residency_tradeoff(self):
        """Section 6's other side: vGPRS holds contexts for idle MSs,
        3G TR does not — residency vs. setup latency."""
        nw_v = build_vgprs_network(seed=43)
        ms = nw_v.add_ms("MS1", IMSI1, MSISDN1)
        scenarios.register_ms(nw_v, ms)
        nw_v.sim.run(until=nw_v.sim.now + 10)
        nw_t = build_3gtr_network(seed=43)
        ms_t = nw_t.add_ms("MS1", IMSI1, MSISDN1)
        ms_t.power_on()
        nw_t.sim.run_until_true(lambda: ms_t.registered, timeout=30)
        nw_t.sim.run(until=nw_t.sim.now + 10)
        assert nw_v.sgsn.context_count() == 1   # idle but held
        assert nw_t.sgsn.context_count() == 0   # idle and released
        assert nw_v.sgsn.context_residency() > nw_t.sgsn.context_residency()

    def test_packet_radio_jitter_exceeds_circuit_jitter(self):
        """Section 6 'real-time communication': the circuit air interface
        gives jitter-free voice; the shared packet channel does not once
        loaded."""
        # vGPRS: circuit TCH.
        nw_v = build_vgprs_network(seed=44)
        ms_v = nw_v.add_ms("MS1", IMSI1, MSISDN1)
        term_v = nw_v.add_terminal("TERM1", TERM1, answer_delay=0.2)
        nw_v.sim.run(until=0.5)
        scenarios.register_ms(nw_v, ms_v)
        scenarios.call_ms_to_terminal(nw_v, ms_v, term_v)
        ref = next(iter(term_v.calls))
        term_v.start_talking(ref, duration=2.0)
        nw_v.sim.run(until=nw_v.sim.now + 3)
        jitter_v = nw_v.sim.metrics.get_histogram("MS1.jitter")

        # 3G TR: shared packet channel with two competing talkers.
        nw_t = build_3gtr_network(seed=44, packet_channel_bps=30_000.0)
        ms_a = nw_t.add_ms("MS-A", IMSI1, MSISDN1, answer_delay=0.2)
        ms_b = nw_t.add_ms("MS-B", "466920000000002", "+886935000002",
                           answer_delay=0.2)
        term_a = nw_t.add_terminal("TERM-A", TERM1, answer_delay=0.2)
        term_b = nw_t.add_terminal("TERM-B", "+886222000002", answer_delay=0.2)
        nw_t.sim.run(until=0.5)
        for handset in (ms_a, ms_b):
            handset.power_on()
        nw_t.sim.run_until_true(
            lambda: ms_a.registered and ms_b.registered, timeout=30
        )
        nw_t.sim.run(until=nw_t.sim.now + 1)
        ms_a.place_call(term_a.alias)
        nw_t.sim.run_until_true(lambda: ms_a.state == "in-call", timeout=30)
        ms_b.place_call(term_b.alias)
        nw_t.sim.run_until_true(lambda: ms_b.state == "in-call", timeout=30)
        ms_a.start_talking(duration=2.0)
        ms_b.start_talking(duration=2.0)
        nw_t.sim.run(until=nw_t.sim.now + 3)
        jitter_t = nw_t.sim.metrics.get_histogram("TERM-A.jitter")
        assert jitter_v.maximum < 1e-9
        assert jitter_t.maximum > jitter_v.maximum
