"""Unit and integration tests for correlated procedure spans."""

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.obs.spans import NULL_SPAN, SpanTracker
from repro.sim.trace import TraceRecorder


class TestSpanTracker:
    def make(self):
        clock = {"t": 0.0}
        tracker = SpanTracker(clock=lambda: clock["t"])
        trace = TraceRecorder(clock=lambda: clock["t"])
        trace.sink = tracker.on_entry
        return tracker, trace, clock

    def test_open_close_lifecycle(self):
        tracker, _, clock = self.make()
        span = tracker.open("call", keys={"imsi": 123}, direction="mo")
        assert span.open
        assert span.keys == {"imsi": "123"}  # values normalised to str
        assert span.attrs == {"direction": "mo"}
        clock["t"] = 2.0
        span.close(status="ok")
        assert not span.open
        assert span.start == 0.0 and span.end == 2.0
        assert span.status == "ok"

    def test_close_is_idempotent(self):
        tracker, _, _ = self.make()
        span = tracker.open("call", keys={"imsi": 1})
        span.close(status="rejected")
        span.close(status="ok")  # defensive close keeps the first status
        assert span.status == "rejected"

    def test_none_keys_dropped(self):
        tracker, _, _ = self.make()
        span = tracker.open("call", keys={"imsi": 1, "ti": None})
        assert span.keys == {"imsi": "1"}

    def test_entry_attaches_by_key(self):
        tracker, trace, _ = self.make()
        span = tracker.open("call", keys={"imsi": 1})
        trace.record("msg", "A", "B", "Um", "M1", imsi="1")
        trace.record("msg", "A", "B", "Um", "M2", imsi="2")  # other call
        trace.record("msg", "A", "B", "Um", "M3")            # no keys
        assert [e.message for e in span.entries] == ["M1"]

    def test_innermost_open_span_wins(self):
        tracker, trace, _ = self.make()
        outer = tracker.open("call", keys={"imsi": 1})
        inner = tracker.open("setup", keys={"imsi": 1})
        trace.record("msg", "A", "B", "Um", "M", imsi="1")
        assert inner.entries and not outer.entries
        inner.close()
        trace.record("msg", "A", "B", "Um", "M2", imsi="1")
        assert [e.message for e in outer.entries] == ["M2"]

    def test_auto_parenting_via_shared_key(self):
        tracker, _, _ = self.make()
        parent = tracker.open("call", keys={"call_ref": 7})
        child = tracker.open("call", keys={"call_ref": 7})
        orphan = tracker.open("call", keys={"call_ref": 8})
        assert child.parent_id == parent.span_id
        assert orphan.parent_id is None

    def test_explicit_parent_overrides(self):
        tracker, _, _ = self.make()
        a = tracker.open("call", keys={"imsi": 1})
        b = tracker.open("release", keys={"imsi": 2}, parent=a)
        assert b.parent_id == a.span_id

    def test_bind_adds_key_after_open(self):
        tracker, trace, _ = self.make()
        span = tracker.open("call", keys={"imsi": 1})
        span.bind("call_ref", 1001)
        trace.record("msg", "GK", "T", "ip", "RAS_ACF", call_ref=1001)
        assert [e.message for e in span.entries] == ["RAS_ACF"]
        assert tracker.find_open("call_ref", 1001) is span

    def test_learned_invoke_id_correlates_response(self):
        tracker, trace, _ = self.make()
        span = tracker.open("registration", keys={"imsi": 1})
        # Request carries both the span key and the transaction id...
        trace.record("msg", "VLR", "HLR", "D", "MAP_Req", imsi="1", invoke_id=5)
        # ...the ack carries only the transaction id.
        trace.record("msg", "HLR", "VLR", "D", "MAP_Ack", invoke_id=5)
        assert [e.message for e in span.entries] == ["MAP_Req", "MAP_Ack"]

    def test_learned_ids_scoped_to_node_pair(self):
        tracker, trace, _ = self.make()
        span = tracker.open("registration", keys={"imsi": 1})
        trace.record("msg", "VLR", "HLR", "D", "MAP_Req", imsi="1", invoke_id=5)
        # Same invoke id on a different node pair: different sequencer,
        # different transaction — must not attach.
        trace.record("msg", "VMSC", "VLR", "B", "MAP_Other", invoke_id=5)
        assert [e.message for e in span.entries] == ["MAP_Req"]

    def test_learned_mapping_expires_with_span(self):
        tracker, trace, _ = self.make()
        span = tracker.open("registration", keys={"imsi": 1})
        trace.record("msg", "VLR", "HLR", "D", "MAP_Req", imsi="1", invoke_id=5)
        span.close()
        trace.record("msg", "HLR", "VLR", "D", "MAP_Ack", invoke_id=5)
        assert [e.message for e in span.entries] == ["MAP_Req"]

    def test_find_open_filters_by_name(self):
        tracker, _, _ = self.make()
        call = tracker.open("call", keys={"imsi": 1})
        tracker.open("setup", keys={"imsi": 1})
        assert tracker.find_open("imsi", 1, name="call") is call
        assert tracker.find_open("imsi", 99) is None

    def test_disabled_tracker_returns_null_span(self):
        tracker, trace, _ = self.make()
        tracker.enabled = False
        span = tracker.open("call", keys={"imsi": 1})
        assert span is NULL_SPAN
        assert span.bind("x", 1) is span and span.close() is span
        trace.record("msg", "A", "B", "Um", "M", imsi="1")
        assert tracker.spans == []

    def test_trim_drops_oldest_closed_spans(self):
        tracker, _, _ = self.make()
        tracker.max_spans = 10
        keep_open = tracker.open("call", keys={"imsi": "keep"})
        for i in range(11):
            tracker.open("call", keys={"imsi": i}).close()
        assert len(tracker.spans) <= 10
        assert tracker.dropped > 0
        assert keep_open in tracker.spans  # open spans survive trimming

    def test_queries(self):
        tracker, _, _ = self.make()
        a = tracker.open("call", keys={"imsi": 1})
        b = tracker.open("setup", keys={"imsi": 1})
        assert tracker.open_spans() == [a, b]
        assert tracker.by_name("setup") == [b]
        assert tracker.children(a) == [b]
        assert tracker.roots() == [a]
        tracker.clear()
        assert tracker.spans == [] and tracker.open_spans() == []


class TestCallSpans:
    """End-to-end span trees over the real network."""

    def build(self, answer_delay=0.4):
        nw = build_vgprs_network()
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001",
                       answer_delay=answer_delay)
        term = nw.add_terminal("TERM1", "+886222000001",
                               answer_delay=answer_delay)
        nw.sim.run(until=0.5)
        return nw, ms, term

    def test_registration_span_covers_figure4(self):
        nw, ms, _ = self.build()
        scenarios.register_ms(nw, ms)
        (reg,) = nw.sim.spans.by_name("registration")
        assert reg.status == "ok" and reg.parent_id is None
        names = {e.message for e in reg.entries}
        # Figure 4 steps, including MAP acks correlated via invoke_id.
        for step in ("Um_Location_Update_Request", "MAP_Update_Location",
                     "MAP_Insert_Subs_Data_ack", "RAS_RRQ", "RAS_RCF",
                     "Um_Location_Update_Accept"):
            assert step in names, step

    def test_mo_call_renders_as_one_tree(self):
        nw, ms, term = self.build()
        scenarios.register_ms(nw, ms)
        scenarios.call_ms_to_terminal(nw, ms, term)
        scenarios.hangup_from_ms(nw, ms)
        nw.sim.run(until=nw.sim.now + 1.0)
        spans = nw.sim.spans
        ms_call = next(s for s in spans.by_name("call")
                       if s.attrs.get("direction") == "mo")
        assert ms_call.status == "ok"
        assert "call_ref" in ms_call.keys  # bound by the VMSC
        child_names = {s.name for s in spans.children(ms_call)}
        assert {"setup", "release"} <= child_names
        # The called terminal's span nests under the MS call via call_ref.
        term_call = next(s for s in spans.by_name("call")
                         if s.attrs.get("node") == "TERM1")
        assert term_call.parent_id == ms_call.span_id
        setup = next(s for s in spans.children(ms_call) if s.name == "setup")
        assert setup.attrs["setup_delay"] > 0
        assert not spans.open_spans()

    def test_mt_call_roots_at_calling_terminal(self):
        nw, ms, term = self.build()
        scenarios.register_ms(nw, ms)
        scenarios.call_terminal_to_ms(nw, term, ms)
        scenarios.hangup_from_ms(nw, ms)
        nw.sim.run(until=nw.sim.now + 1.0)
        spans = nw.sim.spans
        term_call = next(s for s in spans.by_name("call")
                         if s.attrs.get("node") == "TERM1")
        assert term_call.parent_id is None
        (mt_leg,) = spans.by_name("mt-leg")
        ms_call = next(s for s in spans.by_name("call")
                       if s.attrs.get("direction") == "mt")
        # terminal -> VMSC leg -> MS, one tree across three nodes.
        assert ms_call.parent_id == mt_leg.span_id
        assert mt_leg.status == "ok" and ms_call.status == "ok"

    def test_spans_do_not_perturb_traces(self):
        def triples(enabled):
            nw = build_vgprs_network()
            nw.sim.spans.enabled = enabled
            ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
            term = nw.add_terminal("TERM1", "+886222000001",
                                   answer_delay=0.4)
            nw.sim.run(until=0.5)
            scenarios.register_ms(nw, ms)
            scenarios.call_ms_to_terminal(nw, ms, term)
            scenarios.hangup_from_ms(nw, ms)
            nw.sim.run(until=nw.sim.now + 1.0)
            return nw.sim.trace.triples()

        assert triples(True) == triples(False)
