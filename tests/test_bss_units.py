"""Direct unit tests for the BSS (BTS/BSC): renaming, routing, paging
broadcast, TCH accounting and the shared packet channel."""

import pytest

from repro.identities import IMSI
from repro.gprs.gb import GbUnitdata
from repro.gsm.bsc import Bsc
from repro.gsm.bts import Bts
from repro.net.interfaces import Interface
from repro.net.node import Network, Node, handles
from repro.packets.base import Packet
from repro.packets.bssap import (
    AAssignmentFailure,
    AAssignmentRequest,
    AClearCommand,
    AClearComplete,
    ALocationUpdate,
    APaging,
    AbisLocationUpdate,
    AbisPaging,
    GsmMessage,
    UmLocationUpdateRequest,
    UmPaging,
    UmSetup,
    AbisSetup,
)
from repro.sim.kernel import Simulator

IMSI1 = IMSI("466920000000001")
IMSI2 = IMSI("466920000000002")


class Sink(Node):
    """Accepts anything; remembers what arrived."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.got = []

    def receive(self, packet, src, interface):
        self.got.append((packet, interface))

    def names(self):
        return [type(p).__name__ for p, _ in self.got]


@pytest.fixture
def bss():
    """MS-sink <-> BTS <-> BSC <-> MSC-sink, plus a second BTS + MS."""
    sim = Simulator()
    net = Network(sim)
    bsc = net.add(Bsc(sim, "BSC", tch_capacity=1))
    bts1 = net.add(Bts(sim, "BTS1"))
    bts2 = net.add(Bts(sim, "BTS2"))
    msc = net.add(Sink(sim, "MSC"))
    ms1 = net.add(Sink(sim, "MS1"))
    ms2 = net.add(Sink(sim, "MS2"))
    net.connect(bts1, bsc, Interface.ABIS, 0.001)
    net.connect(bts2, bsc, Interface.ABIS, 0.001)
    net.connect(bsc, msc, Interface.A, 0.001)
    net.connect(ms1, bts1, Interface.UM, 0.001)
    net.connect(ms2, bts2, Interface.UM, 0.001)
    return sim, bsc, bts1, bts2, msc, ms1, ms2


class TestRenamingChain:
    def test_uplink_lu_renamed_per_hop(self, bss):
        sim, bsc, bts1, _, msc, ms1, _ = bss
        ms1.send(bts1, UmLocationUpdateRequest(imsi=IMSI1, lai="L1"))
        sim.run()
        assert msc.names() == ["ALocationUpdate"]

    def test_downlink_setup_renamed_and_routed(self, bss):
        sim, bsc, bts1, _, msc, ms1, _ = bss
        # Teach the chain where IMSI1 lives.
        ms1.send(bts1, UmLocationUpdateRequest(imsi=IMSI1, lai="L1"))
        sim.run()
        from repro.packets.bssap import ASetup

        msc.send(bsc, ASetup(ti=5, imsi=IMSI1))
        sim.run()
        assert "UmSetup" in ms1.names()

    def test_downlink_unroutable_counted(self, bss):
        sim, bsc, _, _, msc, _, _ = bss
        from repro.packets.bssap import ASetup

        msc.send(bsc, ASetup(ti=5, imsi=IMSI1))  # nothing learned yet
        sim.run()
        assert sim.metrics.counters("BSC.downlink_unroutable") == {
            "BSC.downlink_unroutable": 1
        }

    def test_uplink_setup_rename_at_both_hops(self, bss):
        sim, bsc, bts1, _, msc, ms1, _ = bss
        ms1.send(bts1, UmSetup(ti=1, imsi=IMSI1))
        sim.run()
        assert msc.names() == ["ASetup"]


class TestPagingBroadcast:
    def test_page_reaches_every_cell(self, bss):
        sim, bsc, _, _, msc, ms1, ms2 = bss
        msc.send(bsc, APaging(imsi=IMSI1, lai="L1"))
        sim.run()
        assert ms1.names() == ["UmPaging"]
        assert ms2.names() == ["UmPaging"]

    def test_page_copies_are_independent(self, bss):
        sim, bsc, _, _, msc, ms1, ms2 = bss
        msc.send(bsc, APaging(imsi=IMSI1, lai="L1"))
        sim.run()
        page1 = ms1.got[0][0]
        page2 = ms2.got[0][0]
        assert page1 is not page2
        assert page1.imsi == page2.imsi == IMSI1


class TestTchAccounting:
    def test_assignment_consumes_pool(self, bss):
        sim, bsc, bts1, _, msc, ms1, _ = bss
        ms1.send(bts1, UmLocationUpdateRequest(imsi=IMSI1, lai="L1"))
        sim.run()
        msc.send(bsc, AAssignmentRequest(imsi=IMSI1))
        sim.run()
        assert bsc.tch_in_use == 1
        assert "UmAssignmentCommand" in ms1.names()

    def test_blocking_and_failure_message(self, bss):
        sim, bsc, bts1, bts2, msc, ms1, ms2 = bss
        ms1.send(bts1, UmLocationUpdateRequest(imsi=IMSI1, lai="L1"))
        ms2.send(bts2, UmLocationUpdateRequest(imsi=IMSI2, lai="L1"))
        sim.run()
        msc.send(bsc, AAssignmentRequest(imsi=IMSI1))
        msc.send(bsc, AAssignmentRequest(imsi=IMSI2))  # pool size is 1
        sim.run()
        assert bsc.tch_in_use == 1
        assert "AAssignmentFailure" in msc.names()

    def test_clear_returns_channel(self, bss):
        sim, bsc, bts1, _, msc, ms1, _ = bss
        ms1.send(bts1, UmLocationUpdateRequest(imsi=IMSI1, lai="L1"))
        sim.run()
        msc.send(bsc, AAssignmentRequest(imsi=IMSI1))
        sim.run()
        msc.send(bsc, AClearCommand(imsi=IMSI1))
        sim.run()
        assert bsc.tch_in_use == 0
        assert "AClearComplete" in msc.names()

    def test_clear_for_non_holder_is_harmless(self, bss):
        sim, bsc, _, _, msc, _, _ = bss
        msc.send(bsc, AClearCommand(imsi=IMSI1))
        sim.run()
        assert bsc.tch_in_use == 0


class TestPacketChannel:
    def test_queueing_delay_accumulates(self):
        sim = Simulator()
        net = Network(sim)
        bts = net.add(Bts(sim, "BTS", packet_channel_bps=800.0))  # 100 B/s
        bsc = net.add(Sink(sim, "BSC"))
        ms = net.add(Sink(sim, "MS"))
        net.connect(bts, bsc, Interface.ABIS, 0.0)
        net.connect(ms, bts, Interface.UM, 0.0)
        frame = GbUnitdata(imsi=IMSI1, nsapi=5)
        size = len(frame.build())
        # Two back-to-back frames: the second waits for the first.
        ms.send(bts, frame.copy())
        ms.send(bts, frame.copy())
        sim.run()
        assert len(bsc.got) == 2
        hist = sim.metrics.get_histogram("BTS.pch_delay_up")
        assert hist.count == 2
        service = size * 8 / 800.0
        assert hist.samples[0] == pytest.approx(service)
        assert hist.samples[1] == pytest.approx(2 * service)

    def test_disabled_channel_forwards_immediately(self):
        sim = Simulator()
        net = Network(sim)
        bts = net.add(Bts(sim, "BTS", packet_channel_bps=None))
        bsc = net.add(Sink(sim, "BSC"))
        ms = net.add(Sink(sim, "MS"))
        net.connect(bts, bsc, Interface.ABIS, 0.0)
        net.connect(ms, bts, Interface.UM, 0.0)
        ms.send(bts, GbUnitdata(imsi=IMSI1, nsapi=5))
        sim.run()
        assert len(bsc.got) == 1
        assert sim.metrics.get_histogram("BTS.pch_delay_up") is None

    def test_circuit_voice_bypasses_packet_channel(self):
        from repro.packets.bssap import TchFrame

        sim = Simulator()
        net = Network(sim)
        bts = net.add(Bts(sim, "BTS", packet_channel_bps=8.0))  # 1 B/s!
        bsc = net.add(Sink(sim, "BSC"))
        ms = net.add(Sink(sim, "MS"))
        net.connect(bts, bsc, Interface.ABIS, 0.0)
        net.connect(ms, bts, Interface.UM, 0.0)
        ms.send(bts, TchFrame(ti=1, imsi=IMSI1, seq=1, gen_time_us=0))
        sim.run()
        # Delivered instantly despite the saturated packet channel.
        assert len(bsc.got) == 1
        assert sim.now == 0.0
