"""MS-to-MS calls within one vGPRS network (paper §4: "the called party
can be another MS in the same GPRS network").

Both call legs terminate on the same VMSC: the Q.931 Setup hairpins
through the GGSN, and voice is transcoded twice (TCH -> RTP -> TCH).
"""

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network


@pytest.fixture
def two_ms():
    nw = build_vgprs_network(seed=91)
    ms1 = nw.add_ms("MS1", "466920000000001", "+886935000001")
    ms2 = nw.add_ms("MS2", "466920000000002", "+886935000002",
                    answer_delay=0.5)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms1)
    scenarios.register_ms(nw, ms2)
    return nw, ms1, ms2


class TestMsToMsCall:
    def connect(self, nw, ms1, ms2):
        ms1.place_call(ms2.msisdn)
        assert nw.sim.run_until_true(
            lambda: ms1.state == "in-call" and ms2.state == "in-call",
            timeout=30,
        )

    def test_call_connects(self, two_ms):
        self.connect(*two_ms)

    def test_both_legs_tracked_separately(self, two_ms):
        nw, ms1, ms2 = two_ms
        self.connect(nw, ms1, ms2)
        call1 = nw.vmsc.call_for(ms1.imsi)
        call2 = nw.vmsc.call_for(ms2.imsi)
        assert call1 is not call2
        assert call1.call_ref == call2.call_ref  # shared reference
        assert call1.direction == "mo" and call2.direction == "mt"

    def test_setup_hairpins_through_the_ggsn(self, two_ms):
        nw, ms1, ms2 = two_ms
        since = nw.sim.now
        self.connect(nw, ms1, ms2)
        setups = nw.sim.trace.messages(name="Q931_Setup", since=since)
        hops = [(e.src, e.dst) for e in setups]
        assert ("VMSC", "SGSN") in hops      # MO leg out
        assert ("SGSN", "VMSC") in hops      # MT leg back in
        assert ("GGSN", "IPNET") in hops     # via the packet network

    def test_voice_both_ways_double_transcoded(self, two_ms):
        nw, ms1, ms2 = two_ms
        self.connect(nw, ms1, ms2)
        ms1.start_talking(duration=0.5)
        ms2.start_talking(duration=0.5)
        nw.sim.run(until=nw.sim.now + 1.5)
        assert ms1.frames_received == 25
        assert ms2.frames_received == 25
        counters = nw.sim.metrics.counters("VMSC.frames_transcoded")
        # 25 frames each way, each transcoded up (TCH->RTP) and down.
        assert counters["VMSC.frames_transcoded_up"] == 50
        assert counters["VMSC.frames_transcoded_down"] == 50

    def test_voice_pdp_context_per_ms(self, two_ms):
        nw, ms1, ms2 = two_ms
        self.connect(nw, ms1, ms2)
        nw.sim.run(until=nw.sim.now + 0.5)
        for ms in (ms1, ms2):
            assert nw.vmsc.ms_table.get(ms.imsi).voice_ready

    def test_release_clears_both_legs(self, two_ms):
        nw, ms1, ms2 = two_ms
        self.connect(nw, ms1, ms2)
        nw.sim.run(until=nw.sim.now + 1.0)
        ms1.hangup()
        assert nw.sim.run_until_true(
            lambda: ms1.state == "idle" and ms2.state == "idle", timeout=30
        )
        nw.sim.run(until=nw.sim.now + 2.0)
        assert nw.vmsc.calls == {}
        assert len(nw.gk.call_records) == 1
        for ms in (ms1, ms2):
            assert not nw.vmsc.ms_table.get(ms.imsi).voice_ready

    def test_callee_hangup_also_works(self, two_ms):
        nw, ms1, ms2 = two_ms
        self.connect(nw, ms1, ms2)
        nw.sim.run(until=nw.sim.now + 1.0)
        ms2.hangup()
        assert nw.sim.run_until_true(
            lambda: ms1.state == "idle" and ms2.state == "idle", timeout=30
        )
        assert nw.vmsc.calls == {}

    def test_ms_calling_itself_is_busy(self, two_ms):
        nw, ms1, _ = two_ms
        ms1.place_call(ms1.msisdn)
        nw.sim.run(until=nw.sim.now + 10.0)
        # The MT leg finds the MS busy (it is the caller) and clears.
        assert ms1.state == "idle"
        assert nw.vmsc.calls == {}
