"""Unit tests for GSM security, subscriber records, HLR and VLR."""

import pytest

from repro.errors import SubscriberError
from repro.identities import IMSI, E164Number
from repro.gsm.hlr import Hlr
from repro.gsm.security import (
    AuthTriplet,
    a3_sres,
    a8_kc,
    derive_ki,
    generate_triplet,
)
from repro.gsm.subscriber import SubscriberProfile, SubscriberRecord
from repro.net.node import Network, Node, handles
from repro.net.interfaces import Interface
from repro.packets.map import (
    ERR_ABSENT_SUBSCRIBER,
    ERR_UNKNOWN_SUBSCRIBER,
    MapProvideRoamingNumber,
    MapProvideRoamingNumberAck,
    MapSendAuthInfo,
    MapSendAuthInfoAck,
    MapSendRoutingInformation,
    MapSendRoutingInformationAck,
    MapUpdateLocation,
    MapUpdateLocationAck,
    MapInsertSubsData,
    MapInsertSubsDataAck,
    MapCancelLocation,
    MapCancelLocationAck,
)
from repro.sim.kernel import Simulator

IMSI1 = IMSI("466920000000001")
NUM1 = E164Number("886", "935000001")


class TestSecurity:
    def test_sres_width_and_determinism(self):
        ki = derive_ki("466920000000001")
        rand = b"\x01" * 16
        assert len(a3_sres(ki, rand)) == 4
        assert a3_sres(ki, rand) == a3_sres(ki, rand)

    def test_kc_width(self):
        assert len(a8_kc(b"k" * 16, b"r" * 16)) == 8

    def test_different_keys_different_sres(self):
        rand = b"\x02" * 16
        assert a3_sres(b"a" * 16, rand) != a3_sres(b"b" * 16, rand)

    def test_different_challenges_different_sres(self):
        ki = b"k" * 16
        assert a3_sres(ki, b"\x00" * 16) != a3_sres(ki, b"\x01" * 16)

    def test_triplet_consistency(self):
        ki, rand = b"k" * 16, b"r" * 16
        t = generate_triplet(ki, rand)
        assert t == AuthTriplet(rand, a3_sres(ki, rand), a8_kc(ki, rand))

    def test_triplet_width_validation(self):
        with pytest.raises(ValueError):
            AuthTriplet(b"short", b"\x00" * 4, b"\x00" * 8)
        with pytest.raises(ValueError):
            AuthTriplet(b"\x00" * 16, b"\x00" * 3, b"\x00" * 8)
        with pytest.raises(ValueError):
            AuthTriplet(b"\x00" * 16, b"\x00" * 4, b"\x00" * 7)

    def test_derive_ki_is_per_imsi(self):
        assert derive_ki("466920000000001") != derive_ki("466920000000002")


class TestSubscriberRecord:
    def test_default_ki_derived(self):
        rec = SubscriberRecord(imsi=IMSI1, msisdn=NUM1)
        assert rec.ki == derive_ki(IMSI1.digits)

    def test_registered_property(self):
        rec = SubscriberRecord(imsi=IMSI1, msisdn=NUM1)
        assert not rec.registered
        rec.vlr_name = "VLR"
        assert rec.registered

    def test_profile_defaults(self):
        assert SubscriberProfile().international_allowed
        assert SubscriberProfile().gprs_allowed


class _Probe(Node):
    """Collects every MAP response the HLR sends us."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.got = []

    @handles(MapSendAuthInfoAck, MapUpdateLocationAck,
             MapSendRoutingInformationAck, MapInsertSubsData,
             MapCancelLocation, MapProvideRoamingNumber)
    def on_any(self, msg, src, interface):
        self.got.append(msg)
        if isinstance(msg, MapInsertSubsData):
            self.send(src, MapInsertSubsDataAck(invoke_id=msg.invoke_id))
        elif isinstance(msg, MapCancelLocation):
            self.send(src, MapCancelLocationAck(invoke_id=msg.invoke_id))

    def first(self, klass):
        for msg in self.got:
            if isinstance(msg, klass):
                return msg
        return None


@pytest.fixture
def hlr_setup():
    sim = Simulator()
    net = Network(sim)
    hlr = net.add(Hlr(sim))
    vlr = net.add(_Probe(sim, "VLR-PROBE"))
    gmsc = net.add(_Probe(sim, "GMSC-PROBE"))
    old_vlr = net.add(_Probe(sim, "OLD-VLR"))
    net.connect(vlr, hlr, Interface.D, 0.001)
    net.connect(old_vlr, hlr, Interface.D, 0.001)
    net.connect(gmsc, hlr, Interface.C, 0.001)
    hlr.add_subscriber(SubscriberRecord(imsi=IMSI1, msisdn=NUM1))
    return sim, hlr, vlr, gmsc, old_vlr


class TestHlr:
    def test_duplicate_provisioning_rejected(self, hlr_setup):
        _, hlr, *_ = hlr_setup
        with pytest.raises(SubscriberError):
            hlr.add_subscriber(SubscriberRecord(imsi=IMSI1, msisdn=NUM1))
        with pytest.raises(SubscriberError):
            hlr.add_subscriber(
                SubscriberRecord(imsi=IMSI("466920000000099"), msisdn=NUM1)
            )

    def test_subscriber_lookup(self, hlr_setup):
        _, hlr, *_ = hlr_setup
        assert hlr.subscriber(IMSI1).msisdn == NUM1
        assert hlr.imsi_for_msisdn(NUM1) == IMSI1
        with pytest.raises(SubscriberError):
            hlr.subscriber(IMSI("466920000000098"))

    def test_update_location_downloads_profile(self, hlr_setup):
        sim, hlr, vlr, _, _ = hlr_setup
        vlr.send(hlr, MapUpdateLocation(
            invoke_id=1, imsi=IMSI1, vlr_number="VLR-PROBE",
            msc_number="MSC-X",
        ))
        sim.run()
        insert = vlr.first(MapInsertSubsData)
        assert insert is not None and insert.msisdn == NUM1
        ack = vlr.first(MapUpdateLocationAck)
        assert ack is not None and ack.error == 0
        assert hlr.subscriber(IMSI1).vlr_name == "VLR-PROBE"

    def test_update_location_unknown_subscriber(self, hlr_setup):
        sim, hlr, vlr, _, _ = hlr_setup
        vlr.send(hlr, MapUpdateLocation(
            invoke_id=2, imsi=IMSI("466920000000077"),
            vlr_number="VLR-PROBE", msc_number="M",
        ))
        sim.run()
        assert vlr.first(MapUpdateLocationAck).error == ERR_UNKNOWN_SUBSCRIBER

    def test_relocation_cancels_old_vlr(self, hlr_setup):
        sim, hlr, vlr, _, old_vlr = hlr_setup
        old_vlr.send(hlr, MapUpdateLocation(
            invoke_id=1, imsi=IMSI1, vlr_number="OLD-VLR", msc_number="M",
        ))
        sim.run()
        vlr.send(hlr, MapUpdateLocation(
            invoke_id=2, imsi=IMSI1, vlr_number="VLR-PROBE", msc_number="M",
        ))
        sim.run()
        assert old_vlr.first(MapCancelLocation) is not None
        assert hlr.subscriber(IMSI1).vlr_name == "VLR-PROBE"

    def test_auth_info_returns_valid_triplet(self, hlr_setup):
        sim, hlr, vlr, _, _ = hlr_setup
        vlr.send(hlr, MapSendAuthInfo(invoke_id=5, imsi=IMSI1))
        sim.run()
        ack = vlr.first(MapSendAuthInfoAck)
        record = hlr.subscriber(IMSI1)
        assert ack.sres == a3_sres(record.ki, ack.rand)
        assert ack.kc == a8_kc(record.ki, ack.rand)

    def test_auth_info_unknown_subscriber(self, hlr_setup):
        sim, hlr, vlr, _, _ = hlr_setup
        vlr.send(hlr, MapSendAuthInfo(invoke_id=6, imsi=IMSI("466920000000055")))
        sim.run()
        assert vlr.first(MapSendAuthInfoAck).error == ERR_UNKNOWN_SUBSCRIBER

    def test_sri_absent_subscriber(self, hlr_setup):
        sim, hlr, _, gmsc, _ = hlr_setup
        gmsc.send(hlr, MapSendRoutingInformation(invoke_id=1, msisdn=NUM1))
        sim.run()
        assert gmsc.first(MapSendRoutingInformationAck).error == ERR_ABSENT_SUBSCRIBER

    def test_sri_unknown_number(self, hlr_setup):
        sim, hlr, _, gmsc, _ = hlr_setup
        gmsc.send(hlr, MapSendRoutingInformation(
            invoke_id=2, msisdn=E164Number("886", "999999999"),
        ))
        sim.run()
        assert gmsc.first(MapSendRoutingInformationAck).error == ERR_UNKNOWN_SUBSCRIBER

    def test_sri_interrogates_serving_vlr(self, hlr_setup):
        sim, hlr, vlr, gmsc, _ = hlr_setup
        # Register first so the HLR knows the serving VLR.
        vlr.send(hlr, MapUpdateLocation(
            invoke_id=1, imsi=IMSI1, vlr_number="VLR-PROBE", msc_number="M",
        ))
        sim.run()
        gmsc.send(hlr, MapSendRoutingInformation(invoke_id=3, msisdn=NUM1))
        sim.run()
        prn = vlr.first(MapProvideRoamingNumber)
        assert prn is not None and prn.imsi == IMSI1
        # The probe VLR never answers, so no SRI ack arrives — now send one.
        msrn = E164Number("886", "936001234")
        vlr.send(hlr, MapProvideRoamingNumberAck(invoke_id=prn.invoke_id, msrn=msrn))
        sim.run()
        assert gmsc.first(MapSendRoutingInformationAck).msrn == msrn
