"""Live service mode end to end.

Unit coverage for the pacer, alert lifecycle, published state and HTTP
endpoint, then the integration properties the PR pins:

* a serve run under sustained Poisson arrivals can be scraped over HTTP
  *mid-run*, and every scrape round-trips the strict Prometheus line
  grammar;
* an alert driven by the live workload is observed both ``firing`` and
  ``resolved``;
* a drained shutdown's final metrics are byte-identical to a batch
  (``--rate 0``) run of the same seed and workload;
* SIGTERM produces a graceful drain and the documented exit code.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.obs.slo import parse_slo_rules
from repro.serve.alerts import AlertManager
from repro.serve.cli import (
    build_serve_run,
    finish_serve_run,
    make_parser,
)
from repro.serve.httpd import TelemetryServer
from repro.serve.pacer import Pacer
from repro.serve.state import ServeState

REPO_ROOT = Path(__file__).resolve().parents[1]

HELP_RE = re.compile(r"^# HELP (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) \S.*$")
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<kind>counter|gauge|summary|histogram|untyped)$"
)
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\\n]*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\\n]*")*\})?'
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|inf|nan))$"
)


def assert_prometheus_grammar(text: str) -> int:
    """Every line parses under the strict exposition grammar; returns
    the number of sample lines."""
    samples = 0
    for line in text.splitlines():
        if line.startswith("# HELP "):
            assert HELP_RE.match(line), f"bad HELP line: {line!r}"
        elif line.startswith("# TYPE "):
            assert TYPE_RE.match(line), f"bad TYPE line: {line!r}"
        else:
            assert SAMPLE_RE.match(line), f"bad sample line: {line!r}"
            samples += 1
    return samples


def serve_args(extra):
    return make_parser().parse_args(extra)


# ----------------------------------------------------------------------
# Pacer
# ----------------------------------------------------------------------
class TestPacer:
    def test_unpaced_never_sleeps(self):
        pacer = Pacer(rate=0)
        pacer.start(0.0)
        before = time.monotonic()
        assert pacer.pace(1e9) == 0.0
        assert time.monotonic() - before < 0.5

    def test_fast_rate_barely_sleeps(self):
        pacer = Pacer(rate=1000.0)
        pacer.start(0.0)
        before = time.monotonic()
        pacer.pace(10.0)  # 10 sim-s at 1000x = 10 ms wall
        assert time.monotonic() - before < 2.0

    def test_lag_reported_when_sim_falls_behind(self):
        pacer = Pacer(rate=1e9)
        pacer.start(0.0)
        time.sleep(0.05)
        # The wall moved 50 ms but the sim asked to pace ~0 sim-s in:
        # the schedule says we are late, nothing to sleep.
        assert pacer.pace(1.0) > 0.0
        assert pacer.lag > 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            Pacer(rate=-1.0)


# ----------------------------------------------------------------------
# Alert lifecycle
# ----------------------------------------------------------------------
def bucket(t, **counters):
    return {"t": t, "counters": counters, "gauges": {}, "histograms": {}}


class TestAlertManager:
    def make(self, rule="leak: delta(c) <= 1", **kwargs):
        return AlertManager(parse_slo_rules(rule), **kwargs)

    def test_full_lifecycle_and_exit_code(self):
        mgr = self.make(for_windows=2, clear_windows=2)
        for b in (bucket(1.0, c=1), bucket(2.0, c=5), bucket(3.0, c=5),
                  bucket(4.0, c=1), bucket(5.0, c=0)):
            mgr.observe_bucket(b)
        states = [t["to"] for t in mgr.transitions]
        assert states == ["pending", "firing", "resolved"]
        assert mgr.alerts[0].fired_count == 1
        assert mgr.ever_fired
        assert mgr.exit_code() == 2

    def test_pending_recovery_never_fires(self):
        mgr = self.make(for_windows=3)
        for b in (bucket(1.0, c=5), bucket(2.0, c=0), bucket(3.0, c=0)):
            mgr.observe_bucket(b)
        states = [t["to"] for t in mgr.transitions]
        assert states == ["pending", "ok"]
        assert not mgr.ever_fired
        assert mgr.exit_code() == 0

    def test_firing_at_exit_is_code_one(self):
        mgr = self.make(for_windows=1)
        mgr.observe_bucket(bucket(1.0, c=9))
        assert mgr.alerts[0].state == "firing"
        assert mgr.exit_code() == 1

    def test_transitions_are_logged(self):
        lines = []
        mgr = self.make(for_windows=1, log=lines.append)
        mgr.observe_bucket(bucket(1.0, c=9))
        assert any("pending -> firing" in line for line in lines)

    def test_payload_shape(self):
        mgr = self.make()
        mgr.observe_bucket(bucket(1.0, c=9))
        payload = mgr.to_payload()
        (alert,) = payload["alerts"]
        assert alert["name"] == "leak"
        assert alert["state"] == "pending"
        assert payload["transition_count"] == 1

    def test_rejects_zero_windows(self):
        with pytest.raises(ValueError):
            self.make(for_windows=0)


# ----------------------------------------------------------------------
# Published state + HTTP endpoint
# ----------------------------------------------------------------------
class TestEndpoint:
    def test_state_before_first_publish(self):
        state = ServeState()
        assert "no snapshot" in state.render_metrics()
        assert json.loads(state.status_json())["phase"] == "starting"

    def test_routes(self):
        state = ServeState()
        state.publish(
            snapshot={"sim_time": 1.5, "counters": {"x.y": 3},
                      "gauges": {}, "histograms": {}},
            status={"phase": "serving", "sim_time": 1.5},
            alerts={"alerts": [], "transitions": [], "transition_count": 0},
            incidents={"captured": 1, "dropped": 0, "capturing": False,
                       "incidents": [{"incident": 1, "run": "serve"}]},
        )
        server = TelemetryServer(state, port=0).start()
        try:
            host, port = server.address
            base = f"http://{host}:{port}"

            def get(path):
                with urllib.request.urlopen(base + path, timeout=5) as rsp:
                    return rsp.status, rsp.read().decode()

            status, body = get("/metrics")
            assert status == 200
            assert "repro_x_y 3" in body
            assert_prometheus_grammar(body)
            status, body = get("/status")
            assert json.loads(body)["phase"] == "serving"
            status, body = get("/alerts")
            assert json.loads(body)["alerts"] == []
            status, body = get("/incidents")
            incidents = json.loads(body)
            assert incidents["captured"] == 1
            assert incidents["incidents"][0]["incident"] == 1
            status, _ = get("/")
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as err:
                get("/nope")
            assert err.value.code == 404
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Integration: the full serve pipeline
# ----------------------------------------------------------------------
BASE_ARGS = [
    "--no-http", "--pairs", "3", "--seed", "23",
    "--calls-per-hour", "900", "--duration", "25",
    "--avalanche-at", "10", "--avalanche-spread", "1.5",
    "--alert", "rereg: delta(openloop.reregistrations) <= 0",
    "--alert-for", "1", "--alert-clear", "2",
]


def run_pipeline(extra):
    echoes = []
    run = build_serve_run(serve_args(BASE_ARGS + extra), echo=echoes.append)
    run.loop.run()
    return run, echoes


class TestServeIntegration:
    def test_alert_fires_and_resolves_then_drains(self):
        run, echoes = run_pipeline(["--rate", "0", "--quantum", "0.5"])
        states = [t["to"] for t in run.alerts.transitions]
        assert "firing" in states and "resolved" in states
        assert run.loop.drained
        assert run.workload.active == 0
        assert finish_serve_run(run, echo=echoes.append) == 2
        assert any("rereg=resolved" in line for line in echoes)

    def test_paced_run_matches_unpaced_batch_byte_for_byte(self):
        # Same quantum both sides: the drain ends on a quantum boundary,
        # so the slice size is part of the workload definition — the
        # pacing *rate* is what must never leak into the simulation.
        batch, _ = run_pipeline(["--rate", "0", "--quantum", "0.5"])
        paced, _ = run_pipeline(["--rate", "400", "--quantum", "0.5"])
        assert paced.workload.arrivals == batch.workload.arrivals
        assert (paced.sim.trace.triples()
                == batch.sim.trace.triples())
        assert (paced.state.render_metrics()
                == batch.state.render_metrics())

    def test_mid_run_http_scrape_round_trips_grammar(self):
        args = serve_args([
            "--pairs", "3", "--seed", "23", "--calls-per-hour", "1800",
            "--duration", "30", "--rate", "30", "--quantum", "0.25",
        ])
        run = build_serve_run(args, echo=lambda _line: None)
        server = TelemetryServer(run.state, port=0).start()
        worker = threading.Thread(target=run.loop.run, daemon=True)
        worker.start()
        try:
            host, port = server.address
            base = f"http://{host}:{port}"
            scrapes = 0
            deadline = time.monotonic() + 30.0
            while worker.is_alive() and time.monotonic() < deadline:
                with urllib.request.urlopen(
                    base + "/metrics", timeout=5
                ) as rsp:
                    text = rsp.read().decode()
                if "repro_openloop_offered" in text:
                    assert assert_prometheus_grammar(text) > 10
                    scrapes += 1
                with urllib.request.urlopen(
                    base + "/status", timeout=5
                ) as rsp:
                    status = json.loads(rsp.read().decode())
                assert status["phase"] in ("starting", "serving",
                                           "draining", "stopped")
                time.sleep(0.05)
            worker.join(timeout=30.0)
            assert not worker.is_alive()
            # The run lasted ~1 wall second; we must have scraped a
            # mid-run exposition with live workload counters in it.
            assert scrapes >= 1
            assert run.loop.drained
        finally:
            server.stop()

    def test_incident_capture_endpoint_and_bundle_files(self, tmp_path):
        inc_dir = tmp_path / "incidents"
        run, echoes = run_pipeline([
            "--rate", "0", "--quantum", "0.5",
            "--faults", "at 12 link GK--IPNET down for 4",
            "--incident-dir", str(inc_dir),
        ])
        recorder = run.loop.recorder
        assert recorder is not None and len(recorder.bundles) >= 1
        reasons = [t["reason"]
                   for t in recorder.bundles[0]["triggers"]]
        assert "fault:FAULT_LINK_DOWN:GK--IPNET" in reasons
        # /status carries the capture count and last trigger...
        status = json.loads(run.state.status_json())
        assert status["incidents_captured"] == len(recorder.bundles)
        assert status["last_incident"] == recorder.last_trigger()
        # ...and /incidents serves the published summary payload.
        server = TelemetryServer(run.state, port=0).start()
        try:
            host, port = server.address
            url = f"http://{host}:{port}/incidents"
            with urllib.request.urlopen(url, timeout=5) as rsp:
                payload = json.loads(rsp.read().decode())
        finally:
            server.stop()
        assert payload["captured"] == len(recorder.bundles)
        assert not payload["capturing"]  # drain flushed the capture
        # finish writes one bundle file per incident for repro analyze.
        finish_serve_run(run, echo=echoes.append)
        files = sorted(inc_dir.glob("incident-*.json"))
        assert len(files) == len(recorder.bundles)
        bundle = json.loads(files[0].read_text())
        assert bundle["incident"] == 1
        assert bundle["fault_plan"][0]["link"] == "GK--IPNET"

    def test_sigterm_drains_gracefully(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--no-http", "--pairs", "2", "--seed", "7",
             "--calls-per-hour", "1800", "--rate", "25",
             "--quantum", "0.25"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(2.0)  # let it serve a while
        proc.send_signal(signal.SIGTERM)
        try:
            _, stderr = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise
        assert proc.returncode == 0, stderr
        assert "drained=yes" in stderr
