"""Unit tests for event-driven process synchronisation (Signal/Condition)."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Condition, Signal, spawn, wait_for


class TestSignal:
    def test_fire_notifies_subscribers(self):
        sig = Signal("s")
        hits = []
        sig.subscribe(lambda: hits.append(1))
        sig.fire()
        sig.fire()
        assert hits == [1, 1]
        assert sig.fires == 2

    def test_fire_without_subscribers_is_free(self):
        sig = Signal("s")
        sig.fire()
        assert sig.fires == 0  # not even counted: nobody listened

    def test_unsubscribe_during_fire(self):
        sig = Signal("s")
        hits = []

        def once():
            hits.append("once")
            sig.unsubscribe(once)

        sig.subscribe(once)
        sig.subscribe(lambda: hits.append("always"))
        sig.fire()
        sig.fire()
        assert hits == ["once", "always", "always"]

    def test_unsubscribe_unknown_is_noop(self):
        Signal("s").unsubscribe(lambda: None)


class TestWaitFor:
    def test_wakes_on_pulse(self):
        sim = Simulator()
        sig = Signal("s")
        log = []

        def proc():
            yield wait_for(sig)
            log.append(sim.now)

        spawn(sim, proc())
        sim.schedule(3.0, sig.fire)
        sim.run()
        assert log == [3.0]

    def test_predicate_rechecked_per_pulse(self):
        sim = Simulator()
        sig = Signal("s")
        state = {"n": 0}
        log = []

        def bump():
            state["n"] += 1
            sig.fire()

        def proc():
            yield wait_for(sig, lambda: state["n"] >= 3)
            log.append((sim.now, state["n"]))

        spawn(sim, proc())
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(t, bump)
        sim.run()
        assert log == [(3.0, 3)]

    def test_already_true_predicate_resumes_immediately(self):
        sim = Simulator()
        sig = Signal("s")
        log = []

        def proc():
            yield wait_for(sig, lambda: True)
            log.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert log == [0.0]
        assert not sig._subscribers

    def test_timeout_resumes_without_pulse(self):
        sim = Simulator()
        sig = Signal("s")
        log = []

        def proc():
            yield wait_for(sig, lambda: False, timeout=5.0)
            log.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert log == [5.0]
        assert not sig._subscribers  # timeout cleaned the subscription up

    def test_pulse_cancels_pending_timeout(self):
        sim = Simulator()
        sig = Signal("s")
        log = []

        def proc():
            yield wait_for(sig, timeout=10.0)
            log.append(sim.now)

        spawn(sim, proc())
        sim.schedule(2.0, sig.fire)
        sim.run()
        assert log == [2.0]
        assert sim.now == 2.0  # timeout event was cancelled, clock stopped

    def test_interrupt_while_waiting_unsubscribes(self):
        sim = Simulator()
        sig = Signal("s")

        def proc():
            yield wait_for(sig)

        p = spawn(sim, proc())
        sim.run(until=0.0)
        assert sig._subscribers
        p.interrupt()
        assert not sig._subscribers
        sig.fire()  # must not resurrect the process
        sim.run()
        assert p.finished

    def test_condition_wait(self):
        sim = Simulator()
        sig = Signal("s")
        state = {"ready": False}
        cond = Condition(sig, lambda: state["ready"])
        log = []

        def flip():
            state["ready"] = True
            sig.fire()

        def proc():
            yield cond.wait()
            log.append(sim.now)

        spawn(sim, proc())
        sim.schedule(1.0, sig.fire)  # spurious: predicate still false
        sim.schedule(2.0, flip)
        sim.run()
        assert log == [2.0]

    def test_condition_plus_predicate_rejected(self):
        cond = Condition(Signal("s"), lambda: True)
        with pytest.raises(SimulationError):
            wait_for(cond, lambda: True)

    def test_bad_yield_type_rejected(self):
        sim = Simulator()

        def proc():
            yield "not a wait"

        spawn(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_deterministic_wakeup_order(self):
        def run():
            sim = Simulator(seed=3)
            sig = Signal("s")
            order = []

            def waiter(tag):
                yield wait_for(sig)
                order.append(tag)

            for tag in ("a", "b", "c"):
                spawn(sim, waiter(tag))
            sim.schedule(1.0, sig.fire)
            sim.run()
            return order

        assert run() == run() == ["a", "b", "c"]
