"""Integration tests for MO calls, MT calls and release (§4/§5,
Figures 5-6)."""

import pytest

from repro.core import scenarios
from repro.core.flows import (
    NodeNames,
    match_flow,
    origination_flow,
    release_flow,
    termination_flow,
)
from repro.core.network import build_vgprs_network
from repro.gprs.pdp import NSAPI_VOICE

from tests.conftest import DEFAULT_IMSI, DEFAULT_MSISDN, TERM_ALIAS

NAMES = NodeNames()


class TestOriginationFlow:
    def test_matches_figure5(self, registered):
        since = registered.sim.now
        scenarios.call_ms_to_terminal(
            registered, registered.mss["MS1"], registered.terminals["TERM1"]
        )
        matched = match_flow(registered.sim.trace, origination_flow(NAMES), since=since)
        assert len(matched) == len(origination_flow())

    def test_authorisation_precedes_admission(self, registered):
        since = registered.sim.now
        scenarios.call_ms_to_terminal(
            registered, registered.mss["MS1"], registered.terminals["TERM1"]
        )
        trace = registered.sim.trace
        sifoc = trace.first("MAP_Send_Info_For_Outgoing_Call")
        arq = trace.first("RAS_ARQ")
        assert sifoc.time < arq.time

    def test_voice_pdp_activated_after_connect(self, in_call):
        entry = in_call.vmsc.ms_table.get(in_call.mss["MS1"].imsi)
        assert entry.voice_ready
        ctx = in_call.sgsn.pdp_contexts[(entry.imsi, NSAPI_VOICE)]
        # Step 2.9 creates a *real-time* context.
        assert ctx.qos.delay_class == 1

    def test_call_states(self, in_call):
        ms = in_call.mss["MS1"]
        term = in_call.terminals["TERM1"]
        assert ms.state == "in-call"
        call = in_call.vmsc.call_for(ms.imsi)
        assert call is not None and call.state == "in-call"
        assert any(c.state == "in-call" for c in term.calls.values())

    def test_gk_admitted_both_endpoints(self, in_call):
        call = in_call.vmsc.call_for(in_call.mss["MS1"].imsi)
        record = in_call.gk.active_calls.get(call.call_ref)
        assert record is not None
        assert len(record.endpoints) == 2

    def test_international_call_barred_by_profile(self):
        nw = build_vgprs_network(seed=11)
        ms = nw.add_ms("MS1", DEFAULT_IMSI, DEFAULT_MSISDN,
                       international_allowed=False)
        nw.add_terminal("TERM1", TERM_ALIAS)
        scenarios.register_ms(nw, ms)
        from repro.identities import E164Number

        ms.place_call(E164Number.parse("+14155550100"))
        nw.sim.run(until=nw.sim.now + 10)
        assert ms.state == "idle"
        assert nw.sim.metrics.counters("VMSC.calls_barred") == {
            "VMSC.calls_barred": 1
        }

    def test_local_call_allowed_despite_barring(self):
        nw = build_vgprs_network(seed=12)
        ms = nw.add_ms("MS1", DEFAULT_IMSI, DEFAULT_MSISDN,
                       international_allowed=False)
        term = nw.add_terminal("TERM1", TERM_ALIAS, answer_delay=0.2)
        scenarios.register_ms(nw, ms)
        outcome = scenarios.call_ms_to_terminal(nw, ms, term)
        assert outcome.connected_at is not None

    def test_call_to_unregistered_alias_rejected(self, registered):
        from repro.identities import E164Number

        ms = registered.mss["MS1"]
        ms.place_call(E164Number.parse("+886299999999"))
        registered.sim.run(until=registered.sim.now + 10)
        assert ms.state == "idle"
        assert registered.vmsc.call_for(ms.imsi) is None
        counters = registered.sim.metrics.counters("VMSC.admission_rejects")
        assert counters == {"VMSC.admission_rejects": 1}

    def test_gk_call_cap_produces_arj(self):
        nw = build_vgprs_network(seed=13, gk_max_calls=0)
        ms = nw.add_ms("MS1", DEFAULT_IMSI, DEFAULT_MSISDN)
        term = nw.add_terminal("TERM1", TERM_ALIAS)
        scenarios.register_ms(nw, ms)
        ms.place_call(term.alias)
        nw.sim.run(until=nw.sim.now + 10)
        assert ms.state == "idle"
        assert nw.gk.active_calls == {}


class TestTerminationFlow:
    def test_matches_figure6(self, registered):
        since = registered.sim.now
        scenarios.call_terminal_to_ms(
            registered, registered.terminals["TERM1"], registered.mss["MS1"]
        )
        matched = match_flow(
            registered.sim.trace, termination_flow(NAMES), since=since
        )
        assert len(matched) == len(termination_flow())

    def test_paging_before_setup(self, registered):
        since = registered.sim.now
        scenarios.call_terminal_to_ms(
            registered, registered.terminals["TERM1"], registered.mss["MS1"]
        )
        trace = registered.sim.trace
        page = trace.messages(name="A_Paging", since=since)[0]
        setups = trace.messages(name="A_Setup", since=since)
        assert setups and all(s.time > page.time for s in setups)

    def test_ms_busy_rejects_second_call(self, in_call):
        term2 = in_call.add_terminal("TERM2", "+886222000002")
        in_call.sim.run(until=in_call.sim.now + 0.5)
        ref = term2.place_call(in_call.mss["MS1"].msisdn)
        in_call.sim.run(until=in_call.sim.now + 10)
        assert ref not in term2.calls  # released (busy)
        # The original call is untouched.
        assert in_call.mss["MS1"].state == "in-call"

    def test_page_timeout_releases_caller(self):
        nw = build_vgprs_network(seed=14)
        ms = nw.add_ms("MS1", DEFAULT_IMSI, DEFAULT_MSISDN)
        term = nw.add_terminal("TERM1", TERM_ALIAS)
        scenarios.register_ms(nw, ms)
        # Detach the MS from the radio without telling the network.
        ms.state = "off"
        ref = term.place_call(ms.msisdn)
        nw.sim.run(until=nw.sim.now + 20)
        assert ref not in term.calls
        assert nw.sim.metrics.counters("VMSC.page_timeouts") == {
            "VMSC.page_timeouts": 1
        }

    def test_unregistered_ms_unreachable(self, vgprs):
        term = vgprs.terminals["TERM1"]
        ref = term.place_call(vgprs.mss["MS1"].msisdn)  # never registered
        vgprs.sim.run(until=vgprs.sim.now + 10)
        assert ref not in term.calls


class TestRelease:
    def test_matches_figure5_release(self, in_call):
        since = in_call.sim.now
        scenarios.hangup_from_ms(in_call, in_call.mss["MS1"])
        in_call.sim.run(until=in_call.sim.now + 2)  # drain in-flight H.323
        matched = match_flow(in_call.sim.trace, release_flow(NAMES), since=since)
        assert len(matched) == len(release_flow())

    def test_voice_pdp_deactivated(self, in_call):
        ms = in_call.mss["MS1"]
        scenarios.hangup_from_ms(in_call, ms)
        entry = in_call.vmsc.ms_table.get(ms.imsi)
        assert not entry.voice_ready
        assert entry.signalling_ready  # the signalling context survives
        assert (ms.imsi, NSAPI_VOICE) not in in_call.sgsn.pdp_contexts

    def test_gk_records_cdr(self, in_call):
        scenarios.hangup_from_ms(in_call, in_call.mss["MS1"])
        in_call.sim.run(until=in_call.sim.now + 2)
        assert len(in_call.gk.call_records) == 1
        cdr = in_call.gk.call_records[0]
        assert cdr.complete
        assert cdr.reported_duration_ms > 0

    def test_radio_channel_freed(self, in_call):
        bsc = in_call.bscs[0]
        assert bsc.tch_in_use == 1
        scenarios.hangup_from_ms(in_call, in_call.mss["MS1"])
        in_call.sim.run(until=in_call.sim.now + 2)
        assert bsc.tch_in_use == 0

    def test_remote_release_clears_ms(self, in_call):
        term = in_call.terminals["TERM1"]
        ms = in_call.mss["MS1"]
        ref = next(iter(term.calls))
        term.hangup(ref)
        assert in_call.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        assert in_call.vmsc.call_for(ms.imsi) is None
        entry = in_call.vmsc.ms_table.get(ms.imsi)
        assert not entry.voice_ready

    def test_sequential_calls_reuse_signalling_context(self, registered):
        ms = registered.mss["MS1"]
        term = registered.terminals["TERM1"]
        for _ in range(3):
            scenarios.call_ms_to_terminal(registered, ms, term)
            scenarios.hangup_from_ms(registered, ms)
            registered.sim.run(until=registered.sim.now + 1)
        # Signalling context was never reactivated: exactly one signalling
        # activation (registration) plus three voice activations.
        activations = registered.sim.metrics.counters("SGSN.pdp_activations")
        assert activations == {"SGSN.pdp_activations": 4}
        assert len(registered.gk.call_records) == 3


class TestVoicePath:
    def test_two_way_voice_counts(self, in_call):
        ms = in_call.mss["MS1"]
        term = in_call.terminals["TERM1"]
        ref = next(iter(term.calls))
        ms.start_talking(duration=1.0)
        term.start_talking(ref, duration=1.0)
        in_call.sim.run(until=in_call.sim.now + 2.0)
        assert term.frames_received == 50
        assert ms.frames_received == 50

    def test_transcoding_counted_both_directions(self, in_call):
        ms = in_call.mss["MS1"]
        term = in_call.terminals["TERM1"]
        ref = next(iter(term.calls))
        ms.start_talking(duration=0.5)
        term.start_talking(ref, duration=0.5)
        in_call.sim.run(until=in_call.sim.now + 1.0)
        counters = in_call.sim.metrics.counters("VMSC.frames_transcoded")
        assert counters["VMSC.frames_transcoded_up"] == 25
        assert counters["VMSC.frames_transcoded_down"] == 25

    def test_mouth_to_ear_delay_is_bounded_and_consistent(self, in_call):
        ms = in_call.mss["MS1"]
        term = in_call.terminals["TERM1"]
        ref = next(iter(term.calls))
        ms.start_talking(duration=1.0)
        term.start_talking(ref, duration=1.0)
        in_call.sim.run(until=in_call.sim.now + 2.0)
        m2e = in_call.sim.metrics.get_histogram("MS1.mouth_to_ear")
        # Fixed-latency links + vocoder: delay constant, well under 150 ms.
        assert 0.02 < m2e.mean < 0.15
        assert m2e.maximum - m2e.minimum < 1e-9

    def test_circuit_path_has_no_jitter(self, in_call):
        ms = in_call.mss["MS1"]
        term = in_call.terminals["TERM1"]
        ref = next(iter(term.calls))
        term.start_talking(ref, duration=1.0)
        in_call.sim.run(until=in_call.sim.now + 2.0)
        jitter = in_call.sim.metrics.get_histogram("MS1.jitter")
        assert jitter.maximum < 1e-9

    def test_gen_timestamps_preserved_across_transcoding(self, in_call):
        """The vocoder must carry the talker's generation time through so
        end-to-end measurements stay truthful."""
        ms = in_call.mss["MS1"]
        ms.start_talking(duration=0.2)
        in_call.sim.run(until=in_call.sim.now + 1.0)
        term = in_call.terminals["TERM1"]
        m2e = in_call.sim.metrics.get_histogram("TERM1.mouth_to_ear")
        assert m2e.count == term.frames_received
        assert m2e.minimum > 0
