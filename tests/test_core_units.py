"""Unit tests for core data structures: the MS table, transactions,
relay helpers and RadioConn bookkeeping."""

import pytest

from repro.errors import ProtocolError, SubscriberError
from repro.identities import IMSI, E164Number, IPv4Address
from repro.core.ms_table import MsTable, MsTableEntry
from repro.gprs.pdp import NSAPI_SIGNALLING, NSAPI_VOICE
from repro.gsm.relay import find_imsi, rename_packet, subscriber_keys
from repro.net.transactions import Sequencer, Transactions
from repro.packets.bssap import AbisSetup, UmSetup

IMSI1 = IMSI("466920000000001")
IMSI2 = IMSI("466920000000002")
NUM1 = E164Number("886", "935000001")
IP1 = IPv4Address.parse("10.1.0.1")
IP2 = IPv4Address.parse("10.1.0.2")


class TestMsTable:
    def test_ensure_is_idempotent(self):
        table = MsTable()
        a = table.ensure(IMSI1, now=1.0)
        b = table.ensure(IMSI1, now=2.0)
        assert a is b
        assert a.created_at == 1.0
        assert len(table) == 1

    def test_require_raises_for_unknown(self):
        with pytest.raises(SubscriberError):
            MsTable().require(IMSI1)

    def test_msisdn_index_updates_on_change(self):
        table = MsTable()
        entry = table.ensure(IMSI1)
        table.set_msisdn(entry, NUM1)
        assert table.by_msisdn(NUM1) is entry
        new_number = E164Number("886", "935000999")
        table.set_msisdn(entry, new_number)
        assert table.by_msisdn(NUM1) is None
        assert table.by_msisdn(new_number) is entry

    def test_ip_index_and_shared_address(self):
        table = MsTable()
        entry = table.ensure(IMSI1)
        table.set_ip(entry, NSAPI_SIGNALLING, IP1)
        table.set_ip(entry, NSAPI_VOICE, IP1)
        assert table.by_ip(IP1) is entry
        # Dropping one context keeps the shared address routable.
        table.clear_pdp(entry, NSAPI_VOICE)
        assert table.by_ip(IP1) is entry
        table.clear_pdp(entry, NSAPI_SIGNALLING)
        assert table.by_ip(IP1) is None

    def test_entry_ip_prefers_active_context(self):
        entry = MsTableEntry(imsi=IMSI1)
        assert entry.ip is None
        state = entry.pdp_state(NSAPI_SIGNALLING)
        state.pdp_address = IP1
        assert entry.ip is None  # not active yet
        state.active = True
        assert entry.ip == IP1

    def test_pdp_state_defaults_by_nsapi(self):
        entry = MsTableEntry(imsi=IMSI1)
        assert entry.pdp_state(NSAPI_SIGNALLING).qos.delay_class == 4
        assert entry.pdp_state(NSAPI_VOICE).qos.delay_class == 1

    def test_remove_clears_all_indexes(self):
        table = MsTable()
        entry = table.ensure(IMSI1)
        table.set_msisdn(entry, NUM1)
        table.set_ip(entry, NSAPI_SIGNALLING, IP1)
        table.remove(IMSI1)
        assert table.get(IMSI1) is None
        assert table.by_msisdn(NUM1) is None
        assert table.by_ip(IP1) is None

    def test_iteration(self):
        table = MsTable()
        table.ensure(IMSI1)
        table.ensure(IMSI2)
        assert {e.imsi for e in table} == {IMSI1, IMSI2}


class TestTransactions:
    def test_open_close_roundtrip(self):
        txn = Transactions()
        tid = txn.open("ctx")
        assert txn.close(tid) == "ctx"
        assert len(txn) == 0

    def test_close_unknown_raises(self):
        with pytest.raises(ProtocolError):
            Transactions().close(42)

    def test_try_close_returns_none(self):
        assert Transactions().try_close(42) is None

    def test_open_with_id_rejects_duplicates(self):
        txn = Transactions()
        txn.open_with_id(7, "a")
        with pytest.raises(ProtocolError):
            txn.open_with_id(7, "b")

    def test_ids_are_unique_and_increasing(self):
        txn = Transactions()
        ids = [txn.open(i) for i in range(5)]
        assert ids == sorted(set(ids))

    def test_sequencer(self):
        seq = Sequencer(start=10)
        assert [seq.next() for _ in range(3)] == [10, 11, 12]


class TestRelayHelpers:
    def test_rename_preserves_shared_fields(self):
        um = UmSetup(ti=9, imsi=IMSI1, called=NUM1)
        abis = rename_packet(um, AbisSetup)
        assert type(abis) is AbisSetup
        assert abis.ti == 9 and abis.imsi == IMSI1 and abis.called == NUM1

    def test_rename_carries_payload(self):
        from repro.packets.base import Raw

        um = UmSetup(ti=1, imsi=IMSI1)
        um.payload = Raw(data=b"x")
        abis = rename_packet(um, AbisSetup)
        assert abis.payload.data == b"x"

    def test_find_imsi_in_nested_layers(self):
        from repro.gprs.gb import GbUnitdata

        frame = GbUnitdata(imsi=IMSI1, nsapi=5)
        assert find_imsi(frame) == IMSI1

    def test_subscriber_keys_both_identities(self):
        um = UmSetup(ti=1, imsi=IMSI1)
        keys = subscriber_keys(um)
        assert ("imsi", IMSI1) in keys
        pr = UmSetup(ti=1)
        assert subscriber_keys(pr) == []

    def test_subscriber_keys_finds_tmsi(self):
        from repro.packets.bssap import UmPagingResponse

        msg = UmPagingResponse(tmsi=0x1234)
        assert ("tmsi", 0x1234) in subscriber_keys(msg)
