"""Integration tests for inter-system handoff (Figure 9, experiment E7)."""

import pytest

from repro.core import scenarios
from repro.core.handoff import TARGET_CELL, build_handoff_network


@pytest.fixture(params=["msc", "vmsc"])
def handoff_call(request):
    """A connected MO call, ready to hand off to a classic MSC or a
    second VMSC ('inter-system handoff between two VMSCs follows the
    same procedure', §7)."""
    nw = build_handoff_network(seed=31, target=request.param)
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.vgprs.add_terminal("TERM1", "+886222000001", answer_delay=0.3)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw.vgprs, ms)
    scenarios.call_ms_to_terminal(nw.vgprs, ms, term)
    return nw, ms, term


class TestHandoffProcedure:
    def test_completes(self, handoff_call):
        nw, ms, _ = handoff_call
        nw.trigger_handoff()
        assert nw.sim.run_until_true(nw.handoff_complete, timeout=10)

    def test_map_e_messages_exchanged(self, handoff_call):
        nw, ms, _ = handoff_call
        since = nw.sim.now
        nw.trigger_handoff()
        nw.sim.run_until_true(nw.handoff_complete, timeout=10)
        trace = nw.sim.trace
        for name in ("MAP_Prepare_Handover", "MAP_Prepare_Handover_ack",
                     "A_Handover_Request", "A_Handover_Command",
                     "Um_Handover_Access", "MAP_Send_End_Signal"):
            assert trace.messages(name=name, since=since), f"missing {name}"

    def test_anchor_stays_in_path(self, handoff_call):
        """Figure 9(b): 'the VMSC is an anchor MSC, which is always in
        the call path after inter-system handoff'."""
        nw, ms, _ = handoff_call
        before = nw.voice_path()
        nw.trigger_handoff()
        nw.sim.run_until_true(nw.handoff_complete, timeout=10)
        after = nw.voice_path()
        assert nw.vgprs.vmsc.name in before
        assert nw.vgprs.vmsc.name in after
        assert nw.target_msc.name in after
        assert nw.target_msc.name not in before

    def test_ms_retunes_to_target_cell(self, handoff_call):
        nw, ms, _ = handoff_call
        nw.trigger_handoff()
        nw.sim.run_until_true(nw.handoff_complete, timeout=10)
        assert ms.serving_bts == nw.target_bts.name
        assert ms.cells[TARGET_CELL] == nw.target_bts.name

    def test_voice_continuity_both_directions(self, handoff_call):
        nw, ms, term = handoff_call
        ms.start_talking()
        ref = next(iter(term.calls))
        term.start_talking(ref)
        nw.sim.run(until=nw.sim.now + 0.5)
        up_before, down_before = term.frames_received, ms.frames_received
        nw.trigger_handoff()
        nw.sim.run_until_true(nw.handoff_complete, timeout=10)
        nw.sim.run(until=nw.sim.now + 1.0)
        assert term.frames_received > up_before + 30
        assert ms.frames_received > down_before + 30
        ms.stop_talking()
        term.stop_talking(ref)

    def test_old_radio_channel_released(self, handoff_call):
        nw, ms, _ = handoff_call
        old_bsc = nw.vgprs.bscs[0]
        assert old_bsc.tch_in_use == 1
        nw.trigger_handoff()
        nw.sim.run_until_true(nw.handoff_complete, timeout=10)
        nw.sim.run(until=nw.sim.now + 1)
        assert old_bsc.tch_in_use == 0

    def test_release_after_handoff_ms_initiated(self, handoff_call):
        nw, ms, term = handoff_call
        nw.trigger_handoff()
        nw.sim.run_until_true(nw.handoff_complete, timeout=10)
        ms.hangup()
        assert nw.sim.run_until_true(
            lambda: ms.state == "idle" and not term.calls, timeout=10
        )
        nw.sim.run(until=nw.sim.now + 2)
        assert nw.vgprs.vmsc.calls == {}
        conn = nw.vgprs.vmsc.conn(ms.imsi)
        assert conn.via_msc is None

    def test_release_after_handoff_remote_initiated(self, handoff_call):
        nw, ms, term = handoff_call
        nw.trigger_handoff()
        nw.sim.run_until_true(nw.handoff_complete, timeout=10)
        term.hangup(next(iter(term.calls)))
        assert nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        nw.sim.run(until=nw.sim.now + 2)
        assert nw.vgprs.vmsc.calls == {}


class TestHandoffFailures:
    def test_unknown_target_cell_is_counted(self):
        nw = build_handoff_network(seed=32)
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
        term = nw.vgprs.add_terminal("TERM1", "+886222000001", answer_delay=0.3)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw.vgprs, ms)
        scenarios.call_ms_to_terminal(nw.vgprs, ms, term)
        conn = nw.vgprs.vmsc.conn(ms.imsi)
        nw.vgprs.bscs[0].report_handover_required(
            ms.imsi, conn.ti or 0, "no-such-cell"
        )
        nw.sim.run(until=nw.sim.now + 2)
        assert nw.sim.metrics.counters("VMSC.handoff_no_target") == {
            "VMSC.handoff_no_target": 1
        }
        # The call survives on the original cell.
        assert ms.state == "in-call"

    def test_target_congestion_fails_gracefully(self):
        nw = build_handoff_network(seed=33)
        nw.target_bsc.tch_capacity = 0
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
        term = nw.vgprs.add_terminal("TERM1", "+886222000001", answer_delay=0.3)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw.vgprs, ms)
        scenarios.call_ms_to_terminal(nw.vgprs, ms, term)
        nw.trigger_handoff()
        nw.sim.run(until=nw.sim.now + 3)
        assert not nw.handoff_complete()
        assert ms.state == "in-call"  # stays on the serving cell


class TestSubsequentHandoff:
    @pytest.fixture
    def handed_off(self):
        nw = build_handoff_network(seed=34)
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
        term = nw.vgprs.add_terminal("TERM1", "+886222000001",
                                     answer_delay=0.3)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw.vgprs, ms)
        scenarios.call_ms_to_terminal(nw.vgprs, ms, term)
        nw.trigger_handoff()
        assert nw.sim.run_until_true(nw.handoff_complete, timeout=10)
        return nw, ms, term

    def test_handback_restores_original_path(self, handed_off):
        nw, ms, _ = handed_off
        before = nw.voice_path()
        nw.trigger_handback()
        assert nw.sim.run_until_true(
            lambda: nw.vgprs.vmsc.conn(ms.imsi).via_msc is None, timeout=10
        )
        after = nw.voice_path()
        assert nw.target_msc.name in before
        assert nw.target_msc.name not in after
        assert after[0:3] == ["MS1", "BTS1", "BSC"]
        assert nw.sim.metrics.counters("VMSC.handbacks_completed") == {
            "VMSC.handbacks_completed": 1
        }

    def test_handback_releases_trunk_and_target_radio(self, handed_off):
        nw, ms, _ = handed_off
        nw.trigger_handback()
        nw.sim.run_until_true(
            lambda: nw.vgprs.vmsc.conn(ms.imsi).via_msc is None, timeout=10
        )
        nw.sim.run(until=nw.sim.now + 1)
        assert nw.target_bsc.tch_in_use == 0
        assert nw.sim.metrics.counters("MSC2.e_trunk_released") or \
            nw.sim.metrics.counters("VMSC.e_trunk_released")

    def test_voice_survives_handback(self, handed_off):
        nw, ms, term = handed_off
        ms.start_talking()
        ref = next(iter(term.calls))
        term.start_talking(ref)
        nw.sim.run(until=nw.sim.now + 0.5)
        f0 = (ms.frames_received, term.frames_received)
        nw.trigger_handback()
        nw.sim.run_until_true(
            lambda: nw.vgprs.vmsc.conn(ms.imsi).via_msc is None, timeout=10
        )
        nw.sim.run(until=nw.sim.now + 1.0)
        assert ms.frames_received > f0[0] + 30
        assert term.frames_received > f0[1] + 30
        ms.stop_talking()
        term.stop_talking(ref)

    def test_chain_to_third_system_keeps_anchor(self, handed_off):
        nw, ms, term = handed_off
        nw.add_system("cell-3", "MSC3")
        conn_t = nw.target_msc.conn(ms.imsi)
        nw.target_bsc.report_handover_required(
            ms.imsi, conn_t.ti or 0, "cell-3"
        )
        assert nw.sim.run_until_true(
            lambda: nw.vgprs.vmsc.conn(ms.imsi).via_msc == "MSC3", timeout=10
        )
        nw.sim.run(until=nw.sim.now + 1)
        # MSC2's radio and trunk are gone; the anchor stays in the path.
        assert nw.target_bsc.tch_in_use == 0
        ms.start_talking(duration=0.5)
        nw.sim.run(until=nw.sim.now + 1.0)
        assert term.frames_received >= 25

    def test_release_after_handback_is_clean(self, handed_off):
        nw, ms, term = handed_off
        nw.trigger_handback()
        nw.sim.run_until_true(
            lambda: nw.vgprs.vmsc.conn(ms.imsi).via_msc is None, timeout=10
        )
        ms.hangup()
        assert nw.sim.run_until_true(
            lambda: ms.state == "idle" and not term.calls, timeout=10
        )
        nw.sim.run(until=nw.sim.now + 2)
        assert nw.vgprs.vmsc.calls == {}
        assert nw.vgprs.bscs[0].tch_in_use == 0


class TestIntraMscHandover:
    @pytest.fixture
    def two_bsc_call(self):
        from repro.core.network import build_vgprs_network
        from repro.gsm.bsc import Bsc
        from repro.gsm.bts import Bts
        from repro.net.interfaces import Interface

        nw = build_vgprs_network(seed=36)
        bsc2 = nw.net.add(Bsc(nw.sim, "BSC2"))
        bts2 = nw.net.add(Bts(nw.sim, "BTS2"))
        nw.net.connect(bsc2, nw.vmsc, Interface.A, 0.002, wire_fidelity=True)
        nw.net.connect(bts2, bsc2, Interface.ABIS, 0.002, wire_fidelity=True)
        nw.vmsc.cells["cell-2"] = "BSC2"
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
        nw.add_coverage(ms, bts2)
        ms.cells = {"cell-1": "BTS1", "cell-2": "BTS2"}
        term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.3)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        scenarios.call_ms_to_terminal(nw, ms, term)
        return nw, bsc2, ms, term

    def test_moves_between_own_bscs_without_e_interface(self, two_bsc_call):
        nw, bsc2, ms, _ = two_bsc_call
        conn = nw.vmsc.conn(ms.imsi)
        since = nw.sim.now
        nw.bscs[0].report_handover_required(ms.imsi, conn.ti or 0, "cell-2")
        assert nw.sim.run_until_true(lambda: conn.bsc == "BSC2", timeout=10)
        # No MAP-E signalling for an internal handover.
        assert not nw.sim.trace.messages(name="MAP_Prepare_Handover",
                                         since=since)
        assert nw.sim.metrics.counters("VMSC.intra_handovers") == {
            "VMSC.intra_handovers": 1
        }

    def test_channel_accounting_moves_with_the_call(self, two_bsc_call):
        nw, bsc2, ms, _ = two_bsc_call
        conn = nw.vmsc.conn(ms.imsi)
        assert nw.bscs[0].tch_in_use == 1 and bsc2.tch_in_use == 0
        nw.bscs[0].report_handover_required(ms.imsi, conn.ti or 0, "cell-2")
        nw.sim.run_until_true(lambda: conn.bsc == "BSC2", timeout=10)
        nw.sim.run(until=nw.sim.now + 1)
        assert nw.bscs[0].tch_in_use == 0 and bsc2.tch_in_use == 1

    def test_voice_continues_and_release_is_clean(self, two_bsc_call):
        nw, bsc2, ms, term = two_bsc_call
        conn = nw.vmsc.conn(ms.imsi)
        ms.start_talking()
        ref = next(iter(term.calls))
        term.start_talking(ref)
        nw.bscs[0].report_handover_required(ms.imsi, conn.ti or 0, "cell-2")
        nw.sim.run_until_true(lambda: conn.bsc == "BSC2", timeout=10)
        f0 = (ms.frames_received, term.frames_received)
        nw.sim.run(until=nw.sim.now + 1.0)
        assert ms.frames_received > f0[0] + 30
        assert term.frames_received > f0[1] + 30
        ms.stop_talking()
        term.stop_talking(ref)
        ms.hangup()
        assert nw.sim.run_until_true(lambda: ms.state == "idle", timeout=10)
        nw.sim.run(until=nw.sim.now + 1)
        assert bsc2.tch_in_use == 0

    def test_handover_to_current_cell_is_noop(self, two_bsc_call):
        nw, _, ms, _ = two_bsc_call
        conn = nw.vmsc.conn(ms.imsi)
        nw.bscs[0].report_handover_required(ms.imsi, conn.ti or 0, "cell-1")
        nw.sim.run(until=nw.sim.now + 2)
        assert conn.bsc == "BSC"
        assert ms.state == "in-call"
