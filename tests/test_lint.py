"""repro.lint: per-rule pass/fail fixtures, suppression machinery, CLI
exit codes, and the meta-test that the repo itself lints clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, LintConfig, ProjectModel, run_rules
from repro.lint.baseline import inline_suppressed
from repro.lint.cli import lint_paths, main as lint_main
from repro.lint.rules import RULE_BITS

REPO_ROOT = Path(__file__).resolve().parents[1]
SCAN_ROOT = REPO_ROOT / "src" / "repro"


def lint_tree(tmp_path, files, rules=None, config=None):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    model, violations = lint_paths(tmp_path, rules=rules, config=config)
    return model, violations


def rules_of(violations):
    return sorted({v.rule for v in violations})


# ----------------------------------------------------------------------
# Shared fixture scaffolding: a miniature project with the same
# structural conventions as the real tree.
# ----------------------------------------------------------------------
PACKETS = """
class Packet:
    name = "Packet"
    fields = ()

class Ping(Packet):
    name = "PING"
    fields = (IntField("x"), OptionalField(IntField("y")))

class Pong(Packet):
    name = "PONG"
    fields = Ping.fields + (IntField("z"),)

class Carrier(Packet):
    name = "CARRIER"
    show_in_flow = False
    fields = ()
"""

NODE_SCAFFOLD = """
from packets import Ping, Pong

def handles(*types):
    def deco(fn):
        return fn
    return deco

class Node:
    pass
"""


# ----------------------------------------------------------------------
# R1 determinism
# ----------------------------------------------------------------------
class TestR1Determinism:
    def test_entropy_import_flagged(self, tmp_path):
        _, violations = lint_tree(
            tmp_path, {"core/x.py": "import random\n"}, rules=["R1"]
        )
        assert rules_of(violations) == ["R1"]
        assert "random" in violations[0].message

    def test_from_import_and_aliased_calls_flagged(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "a.py": "from random import choice\n",
                "b.py": "import time as _t\ndef f():\n    return _t.time()\n",
                "c.py": "import os\nJOBS = os.environ.get('JOBS')\n",
                "d.py": (
                    "from datetime import datetime\n"
                    "def f():\n    return datetime.now()\n"
                ),
            },
            rules=["R1"],
        )
        assert len(violations) == 4
        assert all(v.rule == "R1" for v in violations)

    def test_rng_module_is_exempt(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {"sim/rng.py": "import random\n"},
            rules=["R1"],
        )
        assert violations == []

    def test_perf_counter_allowed(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {"a.py": "import time\ndef f():\n    return time.perf_counter()\n"},
            rules=["R1"],
        )
        assert violations == []

    def test_perf_counter_forbidden_in_media_strict_clock_zone(self, tmp_path):
        bad = "import time\ndef f():\n    return time.perf_counter()\n"
        _, violations = lint_tree(
            tmp_path, {"media/fluid.py": bad}, rules=["R1"]
        )
        assert rules_of(violations) == ["R1"]
        assert "strict-clock" in violations[0].message

    def test_monotonic_alias_forbidden_in_strict_clock_zone(self, tmp_path):
        bad = "import time as _t\ndef f():\n    return _t.monotonic_ns()\n"
        _, violations = lint_tree(
            tmp_path, {"media/model.py": bad}, rules=["R1"]
        )
        assert rules_of(violations) == ["R1"]

    def test_sim_time_reads_pass_in_strict_clock_zone(self, tmp_path):
        good = "def f(sim):\n    return sim.now + 0.020\n"
        _, violations = lint_tree(
            tmp_path, {"media/fluid.py": good}, rules=["R1"]
        )
        assert violations == []

    def test_serve_is_a_strict_clock_zone(self, tmp_path):
        bad = "import time\ndef f():\n    return time.monotonic()\n"
        _, violations = lint_tree(
            tmp_path, {"serve/loop.py": bad}, rules=["R1"]
        )
        assert rules_of(violations) == ["R1"]
        assert "strict-clock" in violations[0].message

    def test_pacer_allowlisted_for_host_clock(self, tmp_path):
        ok = "import time\ndef pace():\n    return time.monotonic()\n"
        _, violations = lint_tree(
            tmp_path, {"serve/pacer.py": ok}, rules=["R1"]
        )
        assert violations == []

    def test_pacer_allowlist_does_not_cover_ordinary_r1(self, tmp_path):
        # The allowlist lifts only the strict-clock extension; the
        # baseline determinism rule still bans wall-clock reads there.
        bad = "import time\ndef f():\n    return time.time()\n"
        _, violations = lint_tree(
            tmp_path, {"serve/pacer.py": bad}, rules=["R1"]
        )
        assert rules_of(violations) == ["R1"]
        assert "wall-clock" in violations[0].message

    def test_set_iteration_feeding_scheduler_flagged(self, tmp_path):
        bad = (
            "def f(sim, items):\n"
            "    for item in set(items):\n"
            "        sim.schedule(1.0, print, item)\n"
        )
        _, violations = lint_tree(tmp_path, {"a.py": bad}, rules=["R1"])
        assert rules_of(violations) == ["R1"]
        assert "sorted()" in violations[0].message

    def test_sorted_iteration_and_quiet_loops_pass(self, tmp_path):
        good = (
            "def f(sim, items):\n"
            "    for item in sorted(set(items)):\n"
            "        sim.schedule(1.0, print, item)\n"
            "    for item in set(items):\n"
            "        count = item + 1  # no emission in this loop\n"
        )
        _, violations = lint_tree(tmp_path, {"a.py": good}, rules=["R1"])
        assert violations == []


# ----------------------------------------------------------------------
# R2 dispatch completeness
# ----------------------------------------------------------------------
class TestR2Dispatch:
    def test_unknown_handles_target(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "node.py": NODE_SCAFFOLD
            + (
                "class Server(Node):\n"
                "    @handles(Pnig)\n"
                "    def on_ping(self, msg, src, iface):\n"
                "        pass\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R2"])
        assert any("no class named 'Pnig'" in v.message for v in violations)

    def test_handles_non_packet(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "node.py": NODE_SCAFFOLD
            + (
                "class NotAPacket:\n    pass\n"
                "class Server(Node):\n"
                "    @handles(NotAPacket)\n"
                "    def on_thing(self, msg, src, iface):\n"
                "        pass\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R2"])
        assert any("not a Packet subclass" in v.message for v in violations)

    def test_sent_but_unhandled(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "node.py": NODE_SCAFFOLD
            + (
                "class Server(Node):\n"
                "    @handles(Ping)\n"
                "    def on_ping(self, msg, src, iface):\n"
                "        self.send(src, Pong(z=1))\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R2"])
        assert any(
            "Pong is constructed but no node @handles it" in v.message
            for v in violations
        )

    def test_handled_via_base_class_passes(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "node.py": NODE_SCAFFOLD
            + (
                "from packets import Packet\n"
                "class Server(Node):\n"
                "    @handles(Packet)\n"
                "    def on_any(self, msg, src, iface):\n"
                "        self.send(src, Pong(z=1))\n"
                "        self.send(src, Ping(x=2))\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R2"])
        assert violations == []

    def test_inner_layer_needs_no_handler(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "node.py": NODE_SCAFFOLD
            + (
                "from packets import Carrier\n"
                "class Server(Node):\n"
                "    @handles(Carrier)\n"
                "    def on_carrier(self, msg, src, iface):\n"
                "        self.send(src, Carrier() / Pong(z=1))\n"
                "        inner = Ping(x=1)\n"
                "        self.send(src, Carrier() / inner)\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R2"])
        assert violations == []

    def test_dead_handler(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "node.py": NODE_SCAFFOLD
            + (
                "class Server(Node):\n"
                "    @handles(Pong)\n"
                "    def on_pong(self, msg, src, iface):\n"
                "        pass\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R2"])
        assert any("dead handler" in v.message for v in violations)

    def test_rebuild_helper_reference_keeps_handler_alive(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "node.py": NODE_SCAFFOLD
            + (
                "class Server(Node):\n"
                "    @handles(Pong)\n"
                "    def on_pong(self, msg, src, iface):\n"
                "        pass\n"
            ),
            "relay.py": (
                "from packets import Pong\n"
                "def rebuild(msg, rename_packet):\n"
                "    return rename_packet(msg, Pong)\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R2"])
        assert violations == []


# ----------------------------------------------------------------------
# R3 flow conformance
# ----------------------------------------------------------------------
class TestR3FlowConformance:
    def test_typo_in_flow_step_fails(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "flows.py": (
                "STEPS = [FlowStep('1.1', 'PING'), FlowStep('1.2', 'PNIG')]\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R3"])
        assert len(violations) == 1
        assert "'PNIG'" in violations[0].message

    def test_keyword_message_checked(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "flows.py": "STEPS = [FlowStep('1.1', message='PGON')]\n",
        }
        _, violations = lint_tree(tmp_path, files, rules=["R3"])
        assert len(violations) == 1

    def test_valid_flow_passes(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "flows.py": (
                "STEPS = [FlowStep('1.1', 'PING'), FlowStep('1.2', 'PONG')]\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R3"])
        assert violations == []

    def test_quiet_list_typo_fails(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "trace.py": "DEFAULT_QUIET = frozenset({'PING', 'PINGG'})\n",
        }
        _, violations = lint_tree(tmp_path, files, rules=["R3"])
        assert len(violations) == 1
        assert "quiet-list" in violations[0].message


# ----------------------------------------------------------------------
# R4 sim safety
# ----------------------------------------------------------------------
class TestR4SimSafety:
    def test_sleep_in_handler_fails(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "node.py": NODE_SCAFFOLD
            + (
                "import time\n"
                "class Server(Node):\n"
                "    @handles(Ping)\n"
                "    def on_ping(self, msg, src, iface):\n"
                "        time.sleep(0.5)\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R4"])
        assert any("time.sleep()" in v.message for v in violations)

    def test_file_io_in_process_body_fails(self, tmp_path):
        files = {
            "proc.py": (
                "def talker(sim):\n"
                "    with open('log.txt', 'w') as fh:\n"
                "        fh.write('hi')\n"
                "    yield 1.0\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R4"])
        assert any("open()" in v.message for v in violations)

    def test_io_outside_callbacks_allowed(self, tmp_path):
        files = {
            "export.py": (
                "def export(path, rows):\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write(str(rows))\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R4"])
        assert violations == []

    def test_discarded_span_fails(self, tmp_path):
        files = {
            "node.py": (
                "class Thing:\n"
                "    def go(self):\n"
                "        self.sim.spans.open('call', keys={'imsi': 1})\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R4"])
        assert any("discarded" in v.message for v in violations)

    def test_unclosed_span_attribute_fails(self, tmp_path):
        files = {
            "node.py": (
                "class Thing:\n"
                "    def go(self):\n"
                "        self._span = self.sim.spans.open('call', keys={})\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R4"])
        assert any("never .close()d" in v.message for v in violations)

    def test_closed_span_passes(self, tmp_path):
        files = {
            "node.py": (
                "class Thing:\n"
                "    def go(self):\n"
                "        self._span = self.sim.spans.open('call', keys={})\n"
                "    def done(self):\n"
                "        self._span.close(status='ok')\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R4"])
        assert violations == []

    def test_dict_key_span_closed_via_alias_passes(self, tmp_path):
        files = {
            "node.py": (
                "class Thing:\n"
                "    def go(self):\n"
                "        self.pending = {\n"
                "            'span': self.sim.spans.open('handoff', keys={}),\n"
                "        }\n"
                "    def done(self):\n"
                "        span = self.pending.get('span')\n"
                "        span.close(status='ok')\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R4"])
        assert violations == []


# ----------------------------------------------------------------------
# R5 packet hygiene
# ----------------------------------------------------------------------
class TestR5PacketHygiene:
    def test_unknown_keyword_fails(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "use.py": "from packets import Ping\np = Ping(x=1, bogus=2)\n",
        }
        _, violations = lint_tree(tmp_path, files, rules=["R5"])
        assert len(violations) == 1
        assert "'bogus'" in violations[0].message

    def test_inherited_and_optional_fields_pass(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "use.py": (
                "from packets import Ping, Pong\n"
                "a = Ping(x=1, y=2)\n"
                "b = Pong(x=1, y=2, z=3)\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R5"])
        assert violations == []

    def test_extra_positional_fails(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "use.py": "from packets import Ping\np = Ping(1, 2)\n",
        }
        _, violations = lint_tree(tmp_path, files, rules=["R5"])
        assert any("positional" in v.message for v in violations)

    def test_splat_sites_skipped(self, tmp_path):
        files = {
            "packets.py": PACKETS,
            "use.py": (
                "from packets import Ping\n"
                "def rebuild(values):\n"
                "    return Ping(**values)\n"
            ),
        }
        _, violations = lint_tree(tmp_path, files, rules=["R5"])
        assert violations == []


# ----------------------------------------------------------------------
# Suppressions, baseline, CLI
# ----------------------------------------------------------------------
class TestSuppressionAndCli:
    def test_inline_suppression(self, tmp_path):
        model, violations = lint_tree(
            tmp_path,
            {"a.py": "import random  # lint: ignore[R1]\n"},
            rules=["R1"],
        )
        assert len(violations) == 1
        assert inline_suppressed(model, violations[0])

    def test_inline_suppression_wrong_rule_does_not_apply(self, tmp_path):
        model, violations = lint_tree(
            tmp_path,
            {"a.py": "import random  # lint: ignore[R4]\n"},
            rules=["R1"],
        )
        assert not inline_suppressed(model, violations[0])

    def test_baseline_roundtrip(self, tmp_path):
        _, violations = lint_tree(
            tmp_path, {"a.py": "import random\n"}, rules=["R1"]
        )
        baseline = Baseline.from_violations(violations)
        path = tmp_path / "lint-baseline.json"
        baseline.dump(path)
        reloaded = Baseline.load(path)
        assert reloaded.contains(violations[0])

    def test_fingerprint_stable_across_line_moves(self, tmp_path):
        _, before = lint_tree(
            tmp_path, {"a.py": "import random\n"}, rules=["R1"]
        )
        (tmp_path / "a.py").write_text("# a comment\n\nimport random\n")
        _, after = lint_paths(tmp_path, rules=["R1"])
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint

    def test_cli_exit_code_is_per_rule_bitmask(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import random\n"
            "class Packet:\n    name = 'P'\n    fields = ()\n"
            "class Ping(Packet):\n    name = 'PING'\n    fields = ()\n"
            "STEPS = [FlowStep('1', 'PNIG')]\n"
        )
        code = lint_main([str(tmp_path), "--baseline", "none"])
        assert code == RULE_BITS["R1"] | RULE_BITS["R3"]

    def test_cli_clean_exit_zero(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--baseline", "none"]) == 0

    def test_cli_json_report(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("import random\n")
        out = tmp_path / "report.json"
        code = lint_main(
            [str(tmp_path), "--baseline", "none", "--format", "json",
             "--output", str(out)]
        )
        assert code == RULE_BITS["R1"]
        report = json.loads(out.read_text())
        assert report["summary"]["R1"] == 1
        assert report["exit_code"] == code
        assert report["violations"][0]["rule"] == "R1"

    def test_cli_rule_selection(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\n")
        assert lint_main([str(tmp_path), "--baseline", "none",
                          "--rules", "R2,R3"]) == 0

    def test_write_baseline_then_clean(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\n")
        baseline = tmp_path / "lint-baseline.json"
        assert lint_main([str(tmp_path), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_main_module_dispatches_lint(self, tmp_path):
        from repro.__main__ import main as repro_main

        (tmp_path / "a.py").write_text("import random\n")
        code = repro_main(["lint", str(tmp_path), "--baseline", "none"])
        assert code == RULE_BITS["R1"]

    def test_unparseable_file_is_reported(self, tmp_path):
        (tmp_path / "a.py").write_text("def broken(:\n")
        code = lint_main([str(tmp_path), "--baseline", "none"])
        assert code == 32


# ----------------------------------------------------------------------
# Meta: the repository itself must lint clean against its baseline.
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_repo_lints_clean_against_baseline(self):
        model, violations = lint_paths(SCAN_ROOT)
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        active = [
            v
            for v in violations
            if not baseline.contains(v) and not inline_suppressed(model, v)
        ]
        assert active == [], "\n".join(
            f"{v.file}:{v.line}: {v.rule} {v.message}" for v in active
        )

    def test_repo_baseline_entries_all_have_reasons(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        for entry in baseline.entries:
            assert entry.get("reason"), entry
            assert "TODO" not in str(entry["reason"]), entry

    def test_repo_baseline_has_no_stale_entries(self):
        """Every suppression still matches a live violation; dead
        entries must be removed with --prune-baseline, not shipped."""
        _, violations = lint_paths(SCAN_ROOT)
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        stale = baseline.stale_entries(violations)
        assert stale == [], stale

    def test_repo_is_clean_under_concurrency_rules(self):
        """R6–R8 must hold outright on the real tree — the scrape
        thread, signal handlers, and sweep workers all obey their
        domain discipline with no baseline help at all."""
        _, violations = lint_paths(SCAN_ROOT, rules=["R6", "R7", "R8"])
        assert violations == [], "\n".join(
            f"{v.file}:{v.line}: {v.rule} {v.message}" for v in violations
        )

    def test_repo_model_sanity(self):
        """The packet/node registries resolve to the sizes the tree
        actually declares — guards against the model silently going
        blind after a refactor (which would make every rule vacuous)."""
        model = ProjectModel(SCAN_ROOT)
        assert len(model.packet_classes) > 80
        assert len(model.node_classes) > 10
        assert len(model.handlers) > 80
        assert "RAS_RRQ" in model.packet_wire_names()
        assert model.packet_fields("RasArq") == {
            "seq", "call_ref", "endpoint_alias", "called_alias",
            "bandwidth_kbps", "answer_call",
        }

    def test_seeded_bug_is_caught(self, tmp_path):
        """Acceptance check: copying core/flows.py with one typo'd
        message name into a scratch tree must produce an R3 violation."""
        scratch = tmp_path / "repro"
        scratch.mkdir()
        packets_dir = scratch / "packets"
        packets_dir.mkdir()
        for rel in ("packets/base.py", "packets/fields.py", "packets/ras.py"):
            target = scratch / rel
            target.write_text((SCAN_ROOT / rel).read_text())
        flows = (SCAN_ROOT / "core" / "flows.py").read_text()
        flows = flows.replace('"RAS_RRQ"', '"RAS_RQR"', 1)
        (scratch / "flows.py").write_text(flows)
        _, violations = lint_paths(scratch, rules=["R3"])
        assert any("RAS_RQR" in v.message for v in violations)
