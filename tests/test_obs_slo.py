"""Tests for SLO rule parsing, watchdog verdicts and the CLI surface."""

import math

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.obs.session import ObsSession
from repro.obs.slo import (
    SloError,
    SloWatchdog,
    evaluate_series,
    parse_slo_rule,
    parse_slo_rules,
    render_slo_report,
)
from repro.sim.metrics import summarize_samples


def bucket(t, counters=None, gauges=None, histograms=None):
    return {
        "t": t,
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


def run_dog(rule_text, buckets, start=0.0):
    dog = SloWatchdog(parse_slo_rules(rule_text), start=start)
    for b in buckets:
        dog.push(b)
    return dog.finalize()


class TestGrammar:
    def test_parse_fields(self):
        rule = parse_slo_rule("p95_setup: p95(calls.setup_delay) <= 0.5")
        assert rule.name == "p95_setup"
        assert rule.func == "p95"
        assert rule.args == ("calls.setup_delay",)
        assert rule.op == "<=" and rule.threshold == 0.5
        assert not rule.windowed

    def test_windowed_classification(self):
        assert parse_slo_rule("r: delta(x) <= 1").windowed
        assert parse_slo_rule("r: rate(x) <= 1").windowed
        assert parse_slo_rule("r: idle(x) <= 1").windowed
        assert parse_slo_rule("r: win_p95(x) <= 1").windowed
        assert not parse_slo_rule("r: total(x) <= 1").windowed
        assert not parse_slo_rule("r: value(x) <= 1").windowed

    def test_ratio_takes_two_globs(self):
        rule = parse_slo_rule("tr: ratio(*.seizures, *.calls) <= 1")
        assert rule.args == ("*.seizures", "*.calls")

    def test_le_wins_over_lt(self):
        assert parse_slo_rule("r: total(x) <= 1").op == "<="
        assert parse_slo_rule("r: total(x) < 1").op == "<"

    def test_separators_and_comments(self):
        rules = parse_slo_rules(
            "a: total(x) <= 1; b: value(g) >= 0\n"
            "# a comment\n"
            "c: p99(h) < 2  # trailing comment\n"
        )
        assert [r.name for r in rules] == ["a", "b", "c"]

    @pytest.mark.parametrize("bad", [
        "total(x) <= 1",               # missing name
        "r: total(x) 1",               # no operator
        "r: total(x) <= fast",         # threshold not a number
        "r: total x <= 1",             # no parentheses
        "r: frobnicate(x) <= 1",       # unknown function
        "r: ratio(x) <= 1",            # ratio wants two globs
        "r: total(x, y) <= 1",         # total wants one glob
    ])
    def test_rejects_bad_rules(self, bad):
        with pytest.raises(SloError):
            parse_slo_rule(bad)

    def test_rejects_duplicate_names(self):
        with pytest.raises(SloError, match="duplicate"):
            parse_slo_rules("a: total(x) <= 1\na: total(y) <= 1")

    def test_holds_all_operators(self):
        cases = [("<=", 1.0, True), ("<", 1.0, False), (">=", 1.0, True),
                 (">", 1.0, False), ("==", 1.0, True)]
        for op, value, expected in cases:
            rule = parse_slo_rule(f"r: total(x) {op} 1")
            assert rule.holds(value) is expected, op


class TestVerdicts:
    def test_total_sums_matched_counters(self):
        results = run_dog("t: total(msgs.*) <= 5", [
            bucket(1.0, counters={"msgs.a": 2, "other": 9}),
            bucket(2.0, counters={"msgs.b": 3}),
        ])
        (r,) = results
        assert r.value == 5.0 and r.ok

    def test_cumulative_rules_judge_final_state_only(self):
        # Early wobble above the budget must not fail a converged p95.
        slow = {"h": summarize_samples([9.0])}
        fast = {"h": summarize_samples([0.1] * 99)}
        results = run_dog("lat: p95(h) <= 1.0", [
            bucket(1.0, histograms=slow),
            bucket(2.0, histograms=fast),
        ])
        (r,) = results
        assert r.ok and r.value <= 1.0

    def test_windowed_rule_fails_sticky_on_one_bad_window(self):
        results = run_dog("leak: delta(ctx) <= 2", [
            bucket(1.0, counters={"ctx": 1}),
            bucket(2.0, counters={"ctx": 5}),   # the violation
            bucket(3.0, counters={"ctx": 0}),
        ])
        (r,) = results
        assert not r.ok
        assert r.violation_count == 1
        assert r.violations == [(2.0, 5.0)]

    def test_rate_divides_by_window_width(self):
        results = run_dog("r: rate(x) <= 1.0", [
            bucket(2.0, counters={"x": 6}),  # 3/s over a 2 s window
        ])
        (r,) = results
        assert not r.ok and r.violations == [(2.0, 3.0)]

    def test_idle_measures_staleness(self):
        results = run_dog("live: idle(x) <= 2", [
            bucket(1.0, counters={"x": 1}),
            bucket(2.0), bucket(3.0), bucket(4.0), bucket(5.0),
        ])
        (r,) = results
        assert not r.ok
        # idle exceeds 2 at t=4 (3 s) and t=5 (4 s).
        assert r.violations == [(4.0, 3.0), (5.0, 4.0)]

    def test_idle_with_no_match_counts_from_start(self):
        results = run_dog("live: idle(never.*) <= 1", [
            bucket(1.0), bucket(2.0),
        ])
        (r,) = results
        assert not r.ok and r.value == 2.0

    def test_gauge_value_and_peak(self):
        gauges = lambda v: {"g": {"value": v, "integral": v}}
        results = run_dog("now: value(g) <= 2; top: peak(g) <= 2", [
            bucket(1.0, gauges=gauges(3.0)),
            bucket(2.0, gauges=gauges(1.0)),
        ])
        now, top = results
        assert now.ok and now.value == 1.0     # judged at the edge
        assert not top.ok and top.value == 3.0  # remembers the excursion

    def test_ratio_edge_cases(self):
        zero = run_dog("r: ratio(a, b) <= 1", [bucket(1.0)])
        assert zero[0].value == 0.0 and zero[0].ok
        inf = run_dog("r: ratio(a, b) <= 1", [
            bucket(1.0, counters={"a": 2}),
        ])
        assert math.isinf(inf[0].value) and not inf[0].ok

    def test_win_histogram_checks_each_window(self):
        results = run_dog("w: win_count(h) <= 1", [
            bucket(1.0, histograms={"h": summarize_samples([1.0])}),
            bucket(2.0, histograms={"h": summarize_samples([1.0, 2.0])}),
        ])
        (r,) = results
        assert not r.ok and r.violations == [(2.0, 2.0)]

    def test_histograms_pool_across_buckets_and_globs(self):
        results = run_dog("c: count(lat.*) >= 3", [
            bucket(1.0, histograms={"lat.a": summarize_samples([1.0, 2.0])}),
            bucket(2.0, histograms={"lat.b": summarize_samples([3.0])}),
        ])
        (r,) = results
        assert r.ok and r.value == 3.0

    def test_evaluate_series_replays_buckets(self):
        series = {
            "interval": 1.0, "start": 0.0, "sim_time": 2.0, "sources": 1,
            "buckets": [bucket(1.0, counters={"x": 1}),
                        bucket(2.0, counters={"x": 2})],
        }
        results = evaluate_series(parse_slo_rules("t: total(x) == 3"), series)
        assert results[0].ok


class TestReport:
    def test_render_marks_pass_and_fail(self):
        results = run_dog("good: total(x) <= 10\nbad: delta(x) <= 0", [
            bucket(1.0, counters={"x": 4}),
        ])
        text = render_slo_report(results, title="SLO [t]")
        assert text.startswith("SLO [t] report: 2 rule(s), 1 FAILED")
        assert "PASS  good" in text
        assert "FAIL  bad" in text
        assert "1 violating window(s), first at t=1 (value=4)" in text

    def test_render_all_passed(self):
        results = run_dog("good: total(x) <= 10", [
            bucket(1.0, counters={"x": 4}),
        ])
        assert "all passed" in render_slo_report(results)


class TestCli:
    def run_session(self, slo):
        obs = ObsSession(slo=slo)
        nw = build_vgprs_network()
        obs.watch(nw.sim, run="t")
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
        term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.6)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        scenarios.call_ms_to_terminal(nw, ms, term)
        scenarios.hangup_from_ms(nw, ms)
        nw.sim.run(until=nw.sim.now + 1.0)
        out = []
        code = obs.finish(echo=out.append)
        return code, "\n".join(out)

    def test_passing_rule_exits_zero(self):
        code, report = self.run_session(
            "trunks: total(*.international_seizures) <= 0"
        )
        assert code == 0
        assert "all passed" in report

    def test_failing_rule_exits_one(self):
        code, report = self.run_session("impossible: total(msgs.tx.*) <= 0")
        assert code == 1
        assert "FAIL  impossible" in report

    def test_bad_rule_raises_before_any_run(self):
        with pytest.raises(SloError):
            ObsSession(slo="broken rule")
