"""Shared fixtures: pre-built networks in common states."""

from __future__ import annotations

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.sim.kernel import Simulator

DEFAULT_IMSI = "466920000000001"
DEFAULT_MSISDN = "+886935000001"
TERM_ALIAS = "+886222000001"


@pytest.fixture
def sim():
    return Simulator(seed=7)


@pytest.fixture
def vgprs():
    """A fresh vGPRS network with one MS (off) and one H.323 terminal."""
    nw = build_vgprs_network(seed=1)
    nw.add_ms("MS1", DEFAULT_IMSI, DEFAULT_MSISDN, answer_delay=0.5)
    nw.add_terminal("TERM1", TERM_ALIAS, answer_delay=0.5)
    nw.sim.run(until=0.5)  # let the terminal register
    return nw


@pytest.fixture
def registered(vgprs):
    """The same network after MS1 completed Figure 4 registration."""
    scenarios.register_ms(vgprs, vgprs.mss["MS1"])
    return vgprs


@pytest.fixture
def in_call(registered):
    """MS1 in an answered MO call with TERM1 (Figure 5 completed)."""
    nw = registered
    scenarios.call_ms_to_terminal(nw, nw.mss["MS1"], nw.terminals["TERM1"])
    return nw
