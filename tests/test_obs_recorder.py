"""Flight recorder + ``repro analyze`` — bounded rings, byte-
deterministic incident bundles, blast-radius analysis on a seeded GK
outage, and the sweep-worker bundle-merge contract (parallel == serial).
"""

import json

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.faults import apply_faults
from repro.obs.analyze import (
    AnalyzeError,
    analyze_bundle,
    fault_intervals,
    load_bundles,
    render_report,
)
from repro.obs.analyze import main as analyze_main
from repro.obs.recorder import (
    FlightRecorder,
    find_incidents,
    merge_incidents,
    plain_value,
)
from repro.obs.series import SeriesSampler
from repro.sim.kernel import Simulator
from repro.sim.sweep import run_sweep, sweep_grid

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
PHONE1 = "+886233000001"

#: One GK outage crossing an MO call: the call at t=8 hits the admission
#: guard, falls back to the PSTN trunk, and the MS re-homes to VoIP
#: (recording an MTTR sample) once the link heals at t=16.
OUTAGE_PLAN = "at 6 link GK--IPNET down for 10"


def _hangup_if_talking(ms):
    if ms.state in ("in-call", "mo-alerting", "mt-ringing"):
        ms.hangup()


def _outage_run(seed=21, plan=OUTAGE_PLAN, until=60.0, **recorder_kwargs):
    """The fixed blast-radius scenario: a pre-fault baseline call, then
    a call placed into the outage.  Returns ``(nw, recorder)`` with the
    recorder flushed (every capture finalized)."""
    nw = build_vgprs_network(seed=seed, with_pstn=True)
    # Armed before the fault plan so FAULT_PLAN_ARMED lands in the ring
    # and the plan is embedded in every bundle.
    recorder = FlightRecorder(nw.sim, run="test", **recorder_kwargs).arm()
    sampler = SeriesSampler(nw.sim, interval=1.0).start()
    recorder.attach_sampler(sampler)
    phone = nw.add_phone("PHONE1", PHONE1, answer_delay=0.5)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    apply_faults(nw, plan)
    nw.sim.schedule_at(2.0, ms.place_call, PHONE1)
    nw.sim.schedule_at(4.0, _hangup_if_talking, ms)
    nw.sim.schedule_at(8.0, ms.place_call, PHONE1)
    nw.sim.schedule_at(20.0, _hangup_if_talking, ms)
    nw.sim.run(until=until)
    sampler.stop(flush=True)
    recorder.flush()
    _ = phone
    return nw, recorder


def _bundle_dump(bundles):
    return json.dumps(bundles, indent=1, sort_keys=True, default=str)


def incident_point(seed, plan=OUTAGE_PLAN):
    """Module-level sweep worker (picklable for --jobs N): bundles ride
    the result value and are discovered by shape."""
    _nw, recorder = _outage_run(seed=seed, plan=plan, until=40.0)
    return {"seed": seed, "incidents": list(recorder.bundles)}


# ----------------------------------------------------------------------
# Ring bounds and capture lifecycle (unit level)
# ----------------------------------------------------------------------
class TestRings:
    def test_entry_ring_evicts_oldest(self):
        sim = Simulator(seed=0)
        recorder = FlightRecorder(sim, max_entries=8).arm()
        for i in range(50):
            sim.trace.note("T", f"N{i}", i=i)
        assert len(recorder.entries) == 8
        assert recorder.entries[0].message == "N42"
        assert recorder.entries[-1].message == "N49"

    def test_rings_stay_bounded_under_the_full_scenario(self):
        _nw, recorder = _outage_run(
            seed=24, max_entries=16, max_closures=2, max_buckets=4,
        )
        assert len(recorder.entries) == 16
        assert len(recorder.closures) <= 2
        assert len(recorder.buckets) <= 4
        # A tiny entry ring still yields a (smaller) valid bundle.
        assert recorder.bundles
        assert len(recorder.bundles[0]["entries"]) <= 16

    def test_max_incidents_drops_further_triggers(self):
        # Two outages far enough apart that the first capture finalizes
        # (short post window) before the second trigger arrives.
        _nw, recorder = _outage_run(
            seed=25,
            plan="at 6 link GK--IPNET down for 2; "
                 "at 40 link GK--IPNET down for 2",
            pre_window=2.0, post_window=2.0, max_incidents=1,
        )
        assert len(recorder.bundles) == 1
        assert recorder.dropped_incidents >= 1

    def test_rejects_bad_bounds(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            FlightRecorder(sim, max_entries=1)
        with pytest.raises(ValueError):
            FlightRecorder(sim, pre_window=-1.0)
        with pytest.raises(ValueError):
            FlightRecorder(sim, max_incidents=0)

    def test_plain_value_stringifies_rich_leaves(self):
        class Rich:
            def __str__(self):
                return "rich!"

        plained = plain_value({"a": [Rich(), 1, (2.5, None)], 3: True})
        assert plained == {"a": ["rich!", 1, [2.5, None]], "3": True}
        json.dumps(plained)  # JSON-safe by construction


# ----------------------------------------------------------------------
# Bundle capture on the seeded GK outage
# ----------------------------------------------------------------------
class TestBundleCapture:
    def test_fault_trigger_opens_and_finalizes_a_bundle(self):
        _nw, recorder = _outage_run()
        assert len(recorder.bundles) == 1
        bundle = recorder.bundles[0]
        reasons = [t["reason"] for t in bundle["triggers"]]
        assert reasons[0] == "fault:FAULT_LINK_DOWN:GK--IPNET"
        # down at 6, pre window 10 => from 0; up at 16 extends post.
        assert bundle["window"]["from"] == 0.0
        assert bundle["window"]["until"] >= 16.0
        assert bundle["fault_plan"] and (
            bundle["fault_plan"][0]["link"] == "GK--IPNET"
        )
        assert bundle["entries"] and bundle["series"]
        assert recorder.last_trigger() == "fault:FAULT_LINK_DOWN:GK--IPNET"

    def test_bundles_are_plain_data_and_byte_deterministic(self):
        _nw1, first = _outage_run(seed=33)
        _nw2, second = _outage_run(seed=33)
        assert _bundle_dump(first.bundles) == _bundle_dump(second.bundles)

    def test_different_plans_diverge(self):
        _nw1, first = _outage_run(seed=33)
        _nw2, second = _outage_run(
            seed=33, plan="at 6 link GK--IPNET down for 11"
        )
        assert _bundle_dump(first.bundles) != _bundle_dump(second.bundles)

    def test_armed_recorder_never_perturbs_the_trace(self):
        def trace_dump(record):
            nw = build_vgprs_network(seed=27, with_pstn=True)
            if record:
                FlightRecorder(nw.sim, run="armed").arm()
            phone = nw.add_phone("PHONE1", PHONE1, answer_delay=0.5)
            ms = nw.add_ms("MS1", IMSI1, MSISDN1)
            nw.sim.run(until=0.5)
            scenarios.register_ms(nw, ms)
            apply_faults(nw, OUTAGE_PLAN)
            nw.sim.schedule_at(8.0, ms.place_call, PHONE1)
            nw.sim.schedule_at(20.0, _hangup_if_talking, ms)
            nw.sim.run(until=40.0)
            _ = phone
            return json.dumps(
                [e.to_dict() for e in nw.sim.trace.entries],
                default=str, sort_keys=True,
            )

        assert trace_dump(record=False) == trace_dump(record=True)

    def test_capture_now_flush_and_payload_shape(self):
        sim = Simulator(seed=0)
        recorder = FlightRecorder(sim).arm()
        sim.trace.note("T", "BEFORE")
        recorder.capture_now("exit:1")
        assert recorder.capturing
        assert recorder.last_trigger() == "exit:1"
        recorder.flush()
        assert not recorder.capturing
        payload = recorder.to_payload()
        assert payload["captured"] == 1 and payload["dropped"] == 0
        (summary,) = payload["incidents"]
        assert summary["triggers"][0]["reason"] == "exit:1"
        assert summary["entries"] == 1  # counts, not the raw entries


# ----------------------------------------------------------------------
# Blast-radius analysis
# ----------------------------------------------------------------------
class TestAnalyze:
    def test_fault_intervals_reconstruct_the_outage(self):
        _nw, recorder = _outage_run()
        (interval,) = fault_intervals(recorder.bundles[0])
        assert interval["kind"] == "link"
        assert interval["label"] == "GK--IPNET"
        assert interval["start"] == pytest.approx(6.0)
        assert interval["end"] == pytest.approx(16.0)
        assert not interval["open"]

    def test_blast_radius_on_the_seeded_outage(self):
        _nw, recorder = _outage_run()
        analysis = analyze_bundle(recorder.bundles[0])
        # The t=8 call overlapped the outage; the t=2 call is baseline.
        assert analysis["affected"]
        modes = {c["mode"] for c in analysis["affected"]}
        assert "pstn-fallback" in modes
        fallback = next(
            c for c in analysis["affected"] if c["mode"] == "pstn-fallback"
        )
        assert fallback["faults"] == ["GK--IPNET"]
        assert analysis["baseline_calls"] >= 1
        assert analysis["setup_baseline"] > 0
        # The MS re-homed after the heal: one MTTR sample in the bundle.
        mttr = analysis["mttr"]["fault.mttr.gk_registration"]
        assert mttr["count"] == 1 and mttr["mean"] > 0

    def test_report_names_the_fault_and_counts_calls(self):
        _nw, recorder = _outage_run()
        report = render_report(analyze_bundle(recorder.bundles[0]))
        assert "GK--IPNET" in report
        assert "pstn-fallback" in report
        assert "fault.mttr.gk_registration" in report
        n_affected = int(
            report.split("affected calls: ")[1].split(" ")[0]
        )
        assert n_affected >= 1

    def test_cli_round_trip_through_incident_dir(self, tmp_path):
        _nw, recorder = _outage_run()
        for n, bundle in enumerate(merge_incidents(recorder.bundles), 1):
            path = tmp_path / f"incident-{n:03d}.json"
            with open(path, "w") as fh:
                json.dump(bundle, fh, indent=1, sort_keys=True,
                          default=str)
        lines = []
        assert analyze_main([str(tmp_path)], echo=lines.append) == 0
        text = "\n".join(lines)
        assert "GK--IPNET" in text
        assert "analyzed 1 incident bundle(s)" in text
        # --json emits the machine-readable analyses.
        lines = []
        assert analyze_main([str(tmp_path), "--json"],
                            echo=lines.append) == 0
        (analysis,) = json.loads("\n".join(lines))
        assert analysis["faults"][0]["label"] == "GK--IPNET"

    def test_load_bundles_rejects_junk(self, tmp_path):
        with pytest.raises(AnalyzeError):
            load_bundles([str(tmp_path / "missing")])
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(AnalyzeError):
            load_bundles([str(empty)])
        bad = tmp_path / "incident-001.json"
        bad.write_text('{"not": "a bundle"}')
        with pytest.raises(AnalyzeError):
            load_bundles([str(bad)])
        assert analyze_main([str(bad)]) == 1


# ----------------------------------------------------------------------
# Sweep-worker bundle merge (parallel == serial)
# ----------------------------------------------------------------------
class TestSweepMerge:
    def test_parallel_bundle_merge_matches_serial(self):
        points = sweep_grid(seed=(31, 32))
        serial = run_sweep(incident_point, points, jobs=1)
        parallel = run_sweep(incident_point, points, jobs=2)
        merged_serial = merge_incidents(
            find_incidents([r.value for r in serial])
        )
        merged_parallel = merge_incidents(
            find_incidents([r.value for r in parallel])
        )
        assert _bundle_dump(merged_serial) == _bundle_dump(merged_parallel)
        assert len(merged_serial) == 2
        # Renumbered in input order, original numbering untouched.
        assert [b["incident"] for b in merged_serial] == [1, 2]
        assert serial[1].value["incidents"][0]["incident"] == 1
        # SweepResult.incidents() finds them by shape.
        assert len(serial[0].incidents()) == 1
