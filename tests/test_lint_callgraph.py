"""Unit tests for the interprocedural layer: call-graph construction,
receiver-type inference, bounded reachability, and thread-domain
classification (`repro.lint.model.CallGraph` / `ThreadDomains`)."""

from __future__ import annotations

from repro.lint.model import ProjectModel


def build_model(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return ProjectModel(tmp_path)


def edge_pairs(graph):
    return {
        (graph.functions[e.caller].label, graph.functions[e.callee].label)
        for edges in graph.edges.values()
        for e in edges
    }


class TestCallGraphResolution:
    def test_same_module_call_resolves(self, tmp_path):
        model = build_model(
            tmp_path,
            {"a.py": "def helper():\n    pass\n\ndef top():\n    helper()\n"},
        )
        assert ("top", "helper") in edge_pairs(model.call_graph())

    def test_cross_module_import_resolves(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "util.py": "def step(x):\n    return x\n",
                "main.py": "from util import step\n\ndef go():\n    step(1)\n",
            },
        )
        assert ("go", "step") in edge_pairs(model.call_graph())

    def test_module_alias_attribute_call_resolves(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/util.py": "def step(x):\n    return x\n",
                "main.py": (
                    "import pkg.util as u\n\ndef go():\n    u.step(1)\n"
                ),
            },
        )
        assert ("go", "step") in edge_pairs(model.call_graph())

    def test_annotated_param_receiver_resolves(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "a.py": (
                    "class Engine:\n"
                    "    def run(self):\n        pass\n"
                    "\n"
                    "def drive(e: Engine):\n"
                    "    e.run()\n"
                ),
            },
        )
        assert ("drive", "Engine.run") in edge_pairs(model.call_graph())

    def test_self_attr_store_inference(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "a.py": (
                    "class Engine:\n"
                    "    def run(self):\n        pass\n"
                    "\n"
                    "class Car:\n"
                    "    def __init__(self):\n"
                    "        self.engine = Engine()\n"
                    "    def go(self):\n"
                    "        self.engine.run()\n"
                ),
            },
        )
        assert ("Car.go", "Engine.run") in edge_pairs(model.call_graph())

    def test_class_body_annotation_inference(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "a.py": (
                    "class State:\n"
                    "    def render(self):\n        pass\n"
                    "\n"
                    "class Server:\n"
                    "    state: State\n"
                    "\n"
                    "class Handler:\n"
                    "    server: Server\n"
                    "    def do_GET(self):\n"
                    "        self.server.state.render()\n"
                ),
            },
        )
        assert ("Handler.do_GET", "State.render") in edge_pairs(
            model.call_graph()
        )

    def test_inherited_method_resolves_through_mro(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "a.py": (
                    "class Base:\n"
                    "    def ping(self):\n        pass\n"
                    "\n"
                    "class Sub(Base):\n"
                    "    pass\n"
                    "\n"
                    "def use(s: Sub):\n"
                    "    s.ping()\n"
                ),
            },
        )
        assert ("use", "Base.ping") in edge_pairs(model.call_graph())

    def test_constructor_call_edges_to_init(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "a.py": (
                    "class Box:\n"
                    "    def __init__(self):\n        pass\n"
                    "\n"
                    "def make():\n"
                    "    return Box()\n"
                ),
            },
        )
        assert ("make", "Box.__init__") in edge_pairs(model.call_graph())

    def test_unique_name_fallback(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "a.py": "def only_here(x):\n    return x\n",
                "b.py": "def go(thing):\n    thing.only_here(1)\n",
            },
        )
        assert ("go", "only_here") in edge_pairs(model.call_graph())

    def test_ambiguous_name_produces_no_edge(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "a.py": "def stop():\n    pass\n",
                "b.py": "def stop():\n    pass\n",
                "c.py": "def go(thing):\n    thing.stop()\n",
            },
        )
        assert not any(
            caller == "go" for caller, _ in edge_pairs(model.call_graph())
        )

    def test_nested_function_shadows_and_resolves(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "a.py": (
                    "def helper():\n    pass\n"
                    "\n"
                    "def outer():\n"
                    "    def helper():\n"
                    "        pass\n"
                    "    helper()\n"
                ),
            },
        )
        graph = model.call_graph()
        edges = [
            graph.functions[e.callee].qname
            for e in graph.edges["a.py::outer"]
        ]
        assert edges == ["a.py::outer.<locals>.helper"]


class TestReachability:
    def test_recursion_terminates(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "a.py": (
                    "def ping():\n    return pong()\n"
                    "\n"
                    "def pong():\n    return ping()\n"
                ),
            },
        )
        graph = model.call_graph()
        reach = graph.reachable([("a.py::ping", "root ping")])
        assert set(reach) == {"a.py::ping", "a.py::pong"}

    def test_bounded_depth(self, tmp_path):
        chain = "\n".join(
            f"def f{i}():\n    return f{i + 1}()\n" for i in range(5)
        ) + "def f5():\n    pass\n"
        model = build_model(tmp_path, {"a.py": chain})
        graph = model.call_graph()
        reach = graph.reachable([("a.py::f0", "root f0")], max_depth=2)
        assert "a.py::f2" in reach
        assert "a.py::f3" not in reach

    def test_witness_chain_is_labelled(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "a.py": (
                    "def top():\n    return mid()\n"
                    "\n"
                    "def mid():\n    return leaf()\n"
                    "\n"
                    "def leaf():\n    pass\n"
                ),
            },
        )
        graph = model.call_graph()
        reach = graph.reachable([("a.py::top", "handler top")])
        assert reach["a.py::leaf"] == ("handler top", "mid", "leaf")


class TestThreadDomains:
    def test_scrape_domain_from_handler_base(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "httpd.py": (
                    "from http.server import BaseHTTPRequestHandler\n"
                    "\n"
                    "def render():\n    pass\n"
                    "\n"
                    "class H(BaseHTTPRequestHandler):\n"
                    "    def do_GET(self):\n"
                    "        render()\n"
                ),
            },
        )
        reach = model.thread_domains().members("scrape")
        assert "httpd.py::render" in reach
        assert reach["httpd.py::render"][0] == "request handler H.do_GET"

    def test_signal_domain_skips_sig_dfl(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "cli.py": (
                    "import signal\n"
                    "\n"
                    "def on_int(signum, frame):\n    pass\n"
                    "\n"
                    "def install():\n"
                    "    signal.signal(signal.SIGINT, on_int)\n"
                    "\n"
                    "def restore():\n"
                    "    signal.signal(signal.SIGINT, signal.SIG_DFL)\n"
                ),
            },
        )
        reach = model.thread_domains().members("signal")
        assert set(reach) == {"cli.py::on_int"}

    def test_worker_domain_unwraps_partial(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "sweep.py": (
                    "import functools\n"
                    "\n"
                    "def run_sweep(fn, points):\n    pass\n"
                    "\n"
                    "def point(x, media=None):\n    return x\n"
                    "\n"
                    "def drive():\n"
                    "    worker = functools.partial(point, media=1)\n"
                    "    run_sweep(worker, [1])\n"
                ),
            },
        )
        reach = model.thread_domains().members("worker")
        assert "sweep.py::point" in reach

    def test_scheduled_callback_is_sim_root(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "hb.py": (
                    "def arm(sim):\n"
                    "    sim.schedule(1.0, beat)\n"
                    "\n"
                    "def beat():\n    pass\n"
                ),
            },
        )
        reach = model.thread_domains().members("sim")
        assert "hb.py::beat" in reach
        assert reach["hb.py::beat"] == ("scheduled callback beat",)

    def test_real_tree_domains_are_sane(self):
        from pathlib import Path

        scan_root = Path(__file__).resolve().parents[1] / "src" / "repro"
        model = ProjectModel(scan_root)
        domains = model.thread_domains()
        scrape = domains.members("scrape")
        # The scrape thread reaches only the handler, the ServeState
        # renders, and the Prometheus formatter — nothing else.
        assert any("httpd.py" in q for q in scrape)
        assert all(
            q.startswith(("serve/httpd.py", "serve/state.py", "obs/prom.py"))
            for q in scrape
        ), sorted(scrape)
        signal_fns = domains.members("signal")
        assert any("request_stop" in q for q in signal_fns)
        worker = domains.members("worker")
        assert any("core/sweeps.py" in q for q in worker)
