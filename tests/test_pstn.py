"""Unit/integration tests for the PSTN substrate."""

import pytest

from repro.identities import E164Number
from repro.net.interfaces import Interface
from repro.net.node import Network
from repro.pstn.numbering import HONG_KONG, NumberingPlan, TAIWAN, UK
from repro.pstn.phone import PstnPhone
from repro.pstn.switch import PstnSwitch
from repro.pstn.trunks import TrunkLedger
from repro.sim.kernel import Simulator


class TestNumberingPlan:
    def test_parse_known_codes(self):
        plan = NumberingPlan()
        n = plan.parse("+85221234567")
        assert n.country_code == HONG_KONG

    def test_is_international(self):
        plan = NumberingPlan()
        n = plan.parse("+447700900123")
        assert plan.is_international(HONG_KONG, n)
        assert not plan.is_international(UK, n)

    def test_number_constructor_validates_cc(self):
        plan = NumberingPlan(country_codes=(TAIWAN,))
        from repro.errors import AddressError

        with pytest.raises(AddressError):
            plan.number("44", "123")

    def test_country_name(self):
        assert NumberingPlan().country_name("44") == "United Kingdom"
        assert NumberingPlan().country_name("7") == "+7"


@pytest.fixture
def pstn():
    """Two exchanges (HK and TW) with one phone each."""
    sim = Simulator()
    net = Network(sim)
    ledger = TrunkLedger()
    ex_hk = net.add(PstnSwitch(sim, "EX-HK", HONG_KONG, ledger, cic_start=1000))
    ex_tw = net.add(PstnSwitch(sim, "EX-TW", TAIWAN, ledger, cic_start=2000))
    net.connect(ex_hk, ex_tw, Interface.ISUP, 0.050)
    a = net.add(PstnPhone(sim, "A", E164Number.parse("+85221110001"),
                          answer_delay=0.3))
    b = net.add(PstnPhone(sim, "B", E164Number.parse("+88622220001"),
                          answer_delay=0.3))
    net.connect(a, ex_hk, Interface.ISUP, 0.002)
    net.connect(b, ex_tw, Interface.ISUP, 0.002)
    ex_hk.add_local(a.number, a.name)
    ex_tw.add_local(b.number, b.name)
    ex_hk.add_route("+886", "EX-TW", international=True)
    ex_tw.add_route("+852", "EX-HK", international=True)
    return sim, ledger, ex_hk, ex_tw, a, b


class TestSwitchRouting:
    def test_international_call_connects(self, pstn):
        sim, ledger, _, _, a, b = pstn
        a.place_call(b.number)
        assert sim.run_until_true(
            lambda: a.state == "in-call" and b.state == "in-call", timeout=10
        )
        assert ledger.international_count() == 1

    def test_voice_travels_the_circuit(self, pstn):
        sim, _, _, _, a, b = pstn
        a.place_call(b.number)
        sim.run_until_true(lambda: a.state == "in-call", timeout=10)
        a.start_talking(duration=0.5)
        b.start_talking(duration=0.5)
        sim.run(until=sim.now + 1.5)
        assert a.frames_received == 25
        assert b.frames_received == 25
        m2e = sim.metrics.get_histogram("B.mouth_to_ear")
        # One international hop plus two subscriber lines.
        assert m2e.mean == pytest.approx(0.054, abs=0.002)

    def test_release_clears_both_ends_and_ledger(self, pstn):
        sim, ledger, _, _, a, b = pstn
        a.place_call(b.number)
        sim.run_until_true(lambda: a.state == "in-call", timeout=10)
        a.hangup()
        assert sim.run_until_true(
            lambda: a.state == "idle" and b.state == "idle", timeout=10
        )
        assert all(r.released_at is not None for r in ledger.records)
        assert all(r.holding_time > 0 for r in ledger.records)

    def test_callee_hangup_releases_caller(self, pstn):
        sim, _, _, _, a, b = pstn
        a.place_call(b.number)
        sim.run_until_true(lambda: b.state == "in-call", timeout=10)
        b.hangup()
        assert sim.run_until_true(lambda: a.state == "idle", timeout=10)

    def test_no_route_released_with_cause(self, pstn):
        sim, _, _, _, a, _ = pstn
        a.place_call(E164Number.parse("+14155550100"))
        sim.run(until=sim.now + 5)
        assert a.state == "idle"
        from repro.packets.isup import CAUSE_NO_ROUTE

        assert a.release_cause == CAUSE_NO_ROUTE

    def test_busy_callee_releases_with_cause(self, pstn):
        sim, _, ex_hk, _, a, b = pstn
        c = PstnPhone(sim, "C", E164Number.parse("+85221110002"))
        ex_hk.network.add(c)
        ex_hk.network.connect(c, ex_hk, Interface.ISUP, 0.002)
        ex_hk.add_local(c.number, c.name)
        a.place_call(b.number)
        sim.run_until_true(lambda: a.state == "in-call", timeout=10)
        c.place_call(b.number)
        sim.run(until=sim.now + 3)
        assert c.state == "idle"
        assert c.release_cause == 17  # user busy

    def test_longest_prefix_wins(self):
        sim = Simulator()
        net = Network(sim)
        sw = net.add(PstnSwitch(sim, "SW", TAIWAN))
        sw.add_route("+886", "GENERIC")
        sw.add_route("+8869", "MOBILE")
        routes = sw._candidate_routes(E164Number.parse("+886935000001"))
        assert [r.next_hop for r in routes] == ["MOBILE"]

    def test_equal_prefix_keeps_configuration_order(self):
        sim = Simulator()
        net = Network(sim)
        sw = net.add(PstnSwitch(sim, "SW", HONG_KONG))
        sw.add_route("+44", "GATEWAY")
        sw.add_route("+44", "INTL", international=True)
        routes = sw._candidate_routes(E164Number.parse("+447700900123"))
        assert [r.next_hop for r in routes] == ["GATEWAY", "INTL"]


class TestFallbackRouting:
    def test_reroute_on_no_route_release(self):
        """The first route releases with a routing cause; the switch must
        try the second (the Figure 8 gateway-first pattern)."""
        sim = Simulator()
        net = Network(sim)
        ledger = TrunkLedger()
        sw = net.add(PstnSwitch(sim, "SW", HONG_KONG, ledger))
        # "DEAD" rejects everything with no-route; "LIVE" hosts the callee.
        dead = net.add(PstnSwitch(sim, "DEAD", HONG_KONG, ledger, cic_start=5000))
        live = net.add(PstnSwitch(sim, "LIVE", HONG_KONG, ledger, cic_start=6000))
        net.connect(sw, dead, Interface.ISUP, 0.002)
        net.connect(sw, live, Interface.ISUP, 0.002)
        caller = net.add(PstnPhone(sim, "CALLER", E164Number.parse("+85221110001")))
        callee = net.add(PstnPhone(sim, "CALLEE", E164Number.parse("+85221110009"),
                                   answer_delay=0.1))
        net.connect(caller, sw, Interface.ISUP, 0.002)
        net.connect(callee, live, Interface.ISUP, 0.002)
        sw.add_local(caller.number, caller.name)
        live.add_local(callee.number, callee.name)
        sw.add_route("+8522111000", "DEAD")
        sw.add_route("+8522111000", "LIVE")
        caller.place_call(callee.number)
        assert sim.run_until_true(lambda: caller.state == "in-call", timeout=10)
        assert sim.metrics.counters("DEAD.route_failures") == {
            "DEAD.route_failures": 1
        }


class TestTrunkLedger:
    def test_seize_release_accounting(self):
        ledger = TrunkLedger()
        n = E164Number.parse("+447700900123")
        ledger.seize(1.0, "A", "B", n, True, 7)
        ledger.seize(2.0, "B", "C", n, False, 8)
        assert ledger.total_count() == 2
        assert ledger.international_count() == 1
        assert len(ledger.active(2.5)) == 2
        ledger.release(5.0, "A", 7)
        assert ledger.records[0].holding_time == 4.0
        assert len(ledger.active(6.0)) == 1

    def test_since_filter(self):
        ledger = TrunkLedger()
        n = E164Number.parse("+447700900123")
        ledger.seize(1.0, "A", "B", n, True, 1)
        ledger.seize(10.0, "A", "B", n, True, 2)
        assert ledger.international_count(since=5.0) == 1

    def test_clear(self):
        ledger = TrunkLedger()
        ledger.seize(1.0, "A", "B", E164Number.parse("+447700900123"), True, 1)
        ledger.clear()
        assert ledger.total_count() == 0
