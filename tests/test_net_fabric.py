"""Unit tests for nodes, links, dispatch and the IP cloud."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.identities import IPv4Address
from repro.net.interfaces import FIGURE3_LINKS, INTERFACE_SPECS, Interface
from repro.net.ip import IPCloud
from repro.net.iphost import IpHost
from repro.net.node import Network, Node, handles
from repro.packets.base import Packet, Raw
from repro.packets.fields import ByteField
from repro.packets.ip import IPv4, UDP
from repro.sim.kernel import Simulator


class Ping(Packet):
    name = "Ping"
    fields = (ByteField("n", 0),)


class Pong(Packet):
    name = "Pong"
    fields = (ByteField("n", 0),)


class Echo(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.pings = []

    @handles(Ping)
    def on_ping(self, msg, src, interface):
        self.pings.append((msg.n, src.name, interface))
        self.send(src, Pong(n=msg.n))


class Caller(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.pongs = []

    @handles(Pong)
    def on_pong(self, msg, src, interface):
        self.pongs.append(msg.n)


@pytest.fixture
def pair():
    sim = Simulator()
    net = Network(sim)
    a = net.add(Caller(sim, "A"))
    b = net.add(Echo(sim, "B"))
    net.connect(a, b, "test", latency=0.1)
    return sim, net, a, b


class TestDispatch:
    def test_request_response(self, pair):
        sim, net, a, b = pair
        a.send(b, Ping(n=7))
        sim.run()
        assert b.pings == [(7, "A", "test")]
        assert a.pongs == [7]
        assert sim.now == pytest.approx(0.2)

    def test_unhandled_counted_not_crashed(self, pair):
        sim, net, a, b = pair
        b.send(a, Ping(n=1))  # Caller has no Ping handler
        sim.run()
        assert sim.metrics.counters("unhandled") == {"unhandled.A": 1}

    def test_handler_inherits_to_subclass(self, pair):
        sim, _, _, _ = pair

        class SubEcho(Echo):
            pass

        net2 = Network(sim)
        a = net2.add(Caller(sim, "A2"))
        b = net2.add(SubEcho(sim, "B2"))
        net2.connect(a, b, "t", 0.0)
        a.send(b, Ping(n=1))
        sim.run()
        assert b.pings

    def test_base_class_handler_catches_subclass_packet(self):
        class SpecialPing(Ping):
            name = "SpecialPing"

        sim = Simulator()
        net = Network(sim)
        a = net.add(Caller(sim, "A"))
        b = net.add(Echo(sim, "B"))
        net.connect(a, b, "t", 0.0)
        a.send(b, SpecialPing(n=3))
        sim.run()
        assert b.pings == [(3, "A", "t")]


class TestTopology:
    def test_duplicate_node_name_rejected(self, pair):
        sim, net, a, b = pair
        with pytest.raises(TopologyError):
            net.add(Caller(sim, "A"))

    def test_unknown_node_lookup(self, pair):
        _, net, _, _ = pair
        with pytest.raises(TopologyError):
            net.node("nope")

    def test_link_to_unknown_peer(self, pair):
        _, _, a, _ = pair
        with pytest.raises(TopologyError):
            a.link_to("C")

    def test_self_link_rejected(self, pair):
        sim, net, a, _ = pair
        with pytest.raises(TopologyError):
            net.connect(a, a, "loop", 0.1)

    def test_negative_latency_rejected(self, pair):
        sim, net, a, b = pair
        with pytest.raises(TopologyError):
            net.connect(a, b, "neg", -1.0)

    def test_peer_requires_single_link(self, pair):
        sim, net, a, b = pair
        c = net.add(Echo(sim, "C"))
        net.connect(a, c, "test", 0.1)
        with pytest.raises(TopologyError):
            a.peer("test")  # two links on "test"
        assert {p.name for p in a.peers("test")} == {"B", "C"}

    def test_inventory_and_link_table(self, pair):
        _, net, _, _ = pair
        assert ("A", "Caller") in net.inventory()
        assert ("A", "B", "test", 0.1) in net.link_table()

    def test_contains(self, pair):
        _, net, _, _ = pair
        assert "A" in net and "missing" not in net


class TestLinkBehaviour:
    def test_down_link_drops(self, pair):
        sim, net, a, b = pair
        link = a.link_to(b)
        link.up = False
        a.send(b, Ping(n=1))
        sim.run()
        assert b.pings == []
        assert sim.metrics.counters("link.test.dropped_down") == {
            "link.test.dropped_down": 1
        }

    def test_wire_fidelity_reparses(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add(Caller(sim, "A"))
        b = net.add(Echo(sim, "B"))
        net.connect(a, b, "t", 0.0, wire_fidelity=True)
        a.send(b, Ping(n=9))
        sim.run()
        assert b.pings == [(9, "A", "t")]

    def test_bit_rate_adds_serialisation_delay(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add(Caller(sim, "A"))
        b = net.add(Echo(sim, "B"))
        net.connect(a, b, "t", 0.0, bit_rate=8.0)  # 1 byte/s
        a.send(b, Ping(n=1))
        sim.run()
        # Ping wire size: 2-byte id + 1-byte field = 3 bytes -> 3 s;
        # the Pong return leg costs the same.
        assert b.pings[0][0] == 1
        assert sim.now == pytest.approx(6.0)

    def test_tx_accounting(self, pair):
        sim, net, a, b = pair
        a.send(b, Ping(n=1))
        sim.run()
        link = a.link_to(b)
        assert link.tx_count == 2  # ping + pong

    def test_trace_records_delivery(self, pair):
        sim, net, a, b = pair
        a.send(b, Ping(n=1))
        sim.run()
        assert sim.trace.triples() == [("Ping", "A", "B"), ("Pong", "B", "A")]


class TestIpCloud:
    def make(self):
        sim = Simulator()
        net = Network(sim)
        cloud = net.add(IPCloud(sim))
        h1 = net.add(IpHost(sim, "H1", IPv4Address.parse("10.0.0.1")))
        h2 = net.add(IpHost(sim, "H2", IPv4Address.parse("10.0.0.2")))
        net.connect(h1, cloud, Interface.IP, 0.01)
        net.connect(h2, cloud, Interface.IP, 0.01)
        h1.attach_to_cloud()
        h2.attach_to_cloud()
        return sim, cloud, h1, h2

    def test_routes_by_destination(self):
        sim, cloud, h1, h2 = self.make()
        got = []

        class RxHost(IpHost):
            @handles(Raw)
            def on_raw(self, msg, src, interface):
                got.append((msg.data, self.rx_reply_addr()))

        # Swap in a receiving host.
        rx = RxHost(sim, "RX", IPv4Address.parse("10.0.0.9"))
        cloud.network.add(rx)
        cloud.network.connect(rx, cloud, Interface.IP, 0.01)
        rx.attach_to_cloud()
        h1.send_ip(rx.ip, Raw(data=b"hi"), dport=99)
        sim.run()
        assert got == [(b"hi", (h1.ip, 99))]

    def test_no_route_counted(self):
        sim, cloud, h1, h2 = self.make()
        h1.send_ip(IPv4Address.parse("10.9.9.9"), Raw(data=b"x"), dport=1)
        sim.run()
        assert sim.metrics.counters("ip.") == {"ip.no_route": 1}

    def test_unregister_removes_route(self):
        sim, cloud, h1, h2 = self.make()
        cloud.unregister(h2.ip)
        h1.send_ip(h2.ip, Raw(data=b"x"), dport=1)
        sim.run()
        assert sim.metrics.counters("ip.") == {"ip.no_route": 1}

    def test_owner_of(self):
        sim, cloud, h1, h2 = self.make()
        assert cloud.owner_of(h1.ip) == "H1"
        with pytest.raises(RoutingError):
            cloud.owner_of(IPv4Address.parse("1.2.3.4"))

    def test_ttl_expiry(self):
        sim, cloud, h1, h2 = self.make()
        pkt = IPv4(src=h1.ip, dst=h2.ip, ttl=1) / UDP(sport=1, dport=1) / Raw(data=b"")
        h1.send(cloud, pkt)
        sim.run()
        assert sim.metrics.counters("ip.") == {"ip.ttl_expired": 1}


class TestInterfaceMetadata:
    def test_all_interfaces_have_specs(self):
        for iface in (Interface.UM, Interface.ABIS, Interface.A, Interface.B,
                      Interface.C, Interface.D, Interface.E, Interface.GB,
                      Interface.GN, Interface.GI):
            assert iface in INTERFACE_SPECS
            assert INTERFACE_SPECS[iface].stack

    def test_figure3_has_ten_links(self):
        assert len(FIGURE3_LINKS) == 10
        assert [row[0] for row in FIGURE3_LINKS] == list(range(1, 11))

    def test_figure3_interfaces_exist(self):
        for _, _, _, iface, _ in FIGURE3_LINKS:
            assert iface in INTERFACE_SPECS


class TestIpHostContext:
    def test_rx_context_restored_after_nested_dispatch(self):
        """A handler that sends (triggering nested deliveries later) must
        not leak its rx context; and rx_reply_addr outside a handler is
        an error."""
        sim = Simulator()
        net = Network(sim)
        cloud = net.add(IPCloud(sim))
        seen = []

        class Echoer(IpHost):
            @handles(Raw)
            def on_raw(self, msg, src, interface):
                addr, port = self.rx_reply_addr()
                seen.append((msg.data, str(addr), port))
                if msg.data == b"ping":
                    self.send_ip(addr, Raw(data=b"pong"), dport=port, sport=5)

        a = net.add(Echoer(sim, "A", IPv4Address.parse("10.0.0.1")))
        b = net.add(Echoer(sim, "B", IPv4Address.parse("10.0.0.2")))
        net.connect(a, cloud, Interface.IP, 0.01)
        net.connect(b, cloud, Interface.IP, 0.01)
        a.attach_to_cloud()
        b.attach_to_cloud()
        a.send_ip(b.ip, Raw(data=b"ping"), dport=7, sport=9)
        sim.run()
        assert seen == [
            (b"ping", "10.0.0.1", 9),
            (b"pong", "10.0.0.2", 5),
        ]
        assert a.rx_ip is None and b.rx_ip is None
        with pytest.raises(AssertionError):
            a.rx_reply_addr()

    def test_empty_ip_packet_counted(self):
        sim = Simulator()
        net = Network(sim)
        cloud = net.add(IPCloud(sim))
        host = net.add(IpHost(sim, "H", IPv4Address.parse("10.0.0.1")))
        net.connect(host, cloud, Interface.IP, 0.0)
        host.attach_to_cloud()
        cloud.send(host, IPv4(src=host.ip, dst=host.ip) / UDP(sport=1, dport=1))
        sim.run()
        assert sim.metrics.counters("H.empty_ip") == {"H.empty_ip": 1}
