"""Tests for trace/metrics exporters and snapshot merging."""

import io
import json
import math
import statistics

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.obs.export import (
    export_trace_jsonl,
    find_snapshots,
    is_snapshot,
    merge_snapshots,
    render_span_tree,
)
from repro.obs.prom import render_prometheus, sanitize_name


def run_call():
    nw = build_vgprs_network()
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.6)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    scenarios.call_ms_to_terminal(nw, ms, term)
    scenarios.hangup_from_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 1.0)
    return nw


def snap(sim_time, counters=None, gauges=None, histograms=None):
    return {
        "sim_time": sim_time,
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


def gauge(value=0.0, peak=0.0, integral=0.0, time_average=0.0):
    return {"value": value, "peak": peak, "integral": integral,
            "time_average": time_average}


def hist(samples):
    n = len(samples)
    return {
        "count": n,
        "mean": statistics.fmean(samples),
        "min": min(samples),
        "max": max(samples),
        "stdev": statistics.stdev(samples) if n > 1 else 0.0,
        "p50": statistics.fmean(samples),  # placeholder quantiles
        "p95": max(samples),
        "p99": max(samples),
    }


class TestTraceJsonl:
    def test_format_and_span_tagging(self):
        nw = run_call()
        buf = io.StringIO()
        lines = export_trace_jsonl(nw.sim, buf, run="r1")
        records = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert len(records) == lines

        header = records[0]
        assert header["type"] == "run" and header["run"] == "r1"
        assert header["n_spans"] == len(nw.sim.spans.spans)
        assert header["n_entries"] == len(nw.sim.trace.entries)

        spans = [r for r in records if r["type"] == "span"]
        events = [r for r in records if r["type"] == "event"]
        assert len(spans) == header["n_spans"]
        assert len(events) == header["n_entries"]
        # Spans come before any event line.
        kinds = [r["type"] for r in records]
        assert kinds.index("event") > max(i for i, k in enumerate(kinds)
                                          if k == "span")
        # Every span id referenced by an event is declared.
        declared = {s["span"] for s in spans}
        referenced = {e["span"] for e in events if e["span"] is not None}
        assert referenced and referenced <= declared
        # Tagging matches the in-memory attachment.
        by_id = {s.span_id: s for s in nw.sim.spans.spans}
        for event in events:
            if event["span"] is not None:
                span = by_id[event["span"]]
                assert any(e.message == event["message"]
                           for e in span.entries)
        # seq is the recording order.
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_append_concatenates_runs(self, tmp_path):
        nw = run_call()
        path = str(tmp_path / "t.jsonl")
        export_trace_jsonl(nw.sim, path, run="a")
        export_trace_jsonl(nw.sim, path, run="b", append=True)
        with open(path) as fh:
            headers = [json.loads(l) for l in fh if '"type": "run"' in l]
        assert [h["run"] for h in headers] == ["a", "b"]

    def test_export_is_deterministic(self):
        def export():
            buf = io.StringIO()
            export_trace_jsonl(run_call().sim, buf)
            return buf.getvalue()

        assert export() == export()


class TestSpanTree:
    def test_render_indents_children(self):
        nw = run_call()
        text = render_span_tree(nw.sim)
        assert "[registration" in text and "[call" in text
        assert "\n  [setup" in text or "\n  [release" in text  # indented child
        assert "Um_Setup" in text  # flow steps appear as leaves

    def test_entry_cap(self):
        nw = run_call()
        text = render_span_tree(nw.sim, max_entries_per_span=1)
        assert "more" in text


class TestSnapshots:
    def test_is_snapshot(self):
        assert is_snapshot(snap(1.0))
        assert not is_snapshot({"sim_time": 1.0})
        assert not is_snapshot([1, 2])

    def test_find_snapshots_walks_nested_values(self):
        a, b = snap(1.0), snap(2.0)
        value = {"z": [1, {"metrics": a}], "a": {"nested": (b,)}}
        found = find_snapshots(value)
        # dict keys walk sorted: "a" before "z".
        assert found == [b, a]

    def test_counters_sum(self):
        merged = merge_snapshots([
            snap(1.0, counters={"x": 2, "y": 1}),
            snap(1.0, counters={"x": 3}),
        ])
        assert merged["counters"] == {"x": 5, "y": 1}
        assert merged["sim_time"] == 2.0 and merged["sources"] == 2

    def test_gauge_time_average_weights_by_duration(self):
        merged = merge_snapshots([
            snap(5.0, gauges={"g": gauge(value=1, peak=4, integral=10.0,
                                         time_average=2.0)}),
            snap(1.0, gauges={"g": gauge(value=2, peak=3, integral=3.0,
                                         time_average=3.0)}),
        ])
        g = merged["gauges"]["g"]
        assert g["value"] == 3 and g["peak"] == 4
        assert g["integral"] == 13.0
        assert g["time_average"] == 13.0 / 6.0

    def test_histogram_pooled_moments_are_exact(self):
        a, b = [1.0, 2.0, 3.0], [4.0, 6.0]
        merged = merge_snapshots([
            snap(1.0, histograms={"h": hist(a)}),
            snap(1.0, histograms={"h": hist(b)}),
        ])
        h = merged["histograms"]["h"]
        pooled = a + b
        assert h["count"] == 5
        assert h["mean"] == statistics.fmean(pooled)
        assert h["min"] == 1.0 and h["max"] == 6.0
        assert math.isclose(h["stdev"], statistics.stdev(pooled))
        # Quantiles are count-weighted estimates of per-source quantiles.
        assert math.isclose(h["p95"], (3.0 * 3 + 6.0 * 2) / 5)

    def test_empty_histogram_sources(self):
        empty = {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                 "stdev": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        merged = merge_snapshots([
            snap(1.0, histograms={"h": empty}),
            snap(1.0, histograms={"h": empty}),
        ])
        assert merged["histograms"]["h"]["count"] == 0

    def test_merge_is_order_independent(self):
        parts = [
            snap(2.0, counters={"x": 1},
                 gauges={"g": gauge(1, 1, 2.0, 1.0)},
                 histograms={"h": hist([1.0, 2.0])}),
            snap(3.0, counters={"x": 4},
                 gauges={"g": gauge(0, 5, 6.0, 2.0)},
                 histograms={"h": hist([5.0])}),
        ]
        assert merge_snapshots(parts) == merge_snapshots(parts[::-1])


class TestPrometheus:
    def test_sanitize_name(self):
        assert sanitize_name("msgs.tx.VMSC") == "repro_msgs_tx_VMSC"
        assert sanitize_name("1bad") == "repro__1bad"
        assert sanitize_name("ok", prefix="x_") == "x_ok"

    def test_render_covers_all_metric_kinds(self):
        snapshot = snap(
            12.5,
            counters={"calls.ok": 3},
            gauges={"SGSN.contexts": gauge(1, 2, 10.0, 0.8)},
            histograms={"m2e": hist([0.08, 0.09])},
        )
        text = render_prometheus(snapshot)
        assert ("# HELP repro_calls_ok Simulation counter calls.ok.\n"
                "# TYPE repro_calls_ok counter\nrepro_calls_ok 3") in text
        assert "repro_SGSN_contexts 1" in text
        assert "repro_SGSN_contexts_time_avg 0.8" in text
        assert "repro_SGSN_contexts_peak 2" in text
        assert 'repro_m2e{quantile="0.5"}' in text
        assert "# TYPE repro_m2e_sum counter" in text
        assert "# TYPE repro_m2e_count counter" in text
        assert "repro_m2e_count 2" in text
        assert "repro_sim_time 12.5" in text
        assert text.endswith("\n")

    def test_every_series_has_help_and_type(self):
        snapshot = snap(
            1.0,
            counters={"c": 1},
            gauges={"g": gauge(1, 2, 1.0, 1.0)},
            histograms={"h": hist([0.5])},
        )
        text = render_prometheus(snapshot)
        helped = set()
        typed = set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
            elif line.startswith("# TYPE "):
                typed.add(line.split()[2])
        emitted = {
            line.split("{")[0].split()[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        }
        assert emitted == helped == typed

    def test_render_accepts_live_registry(self):
        nw = run_call()
        from_registry = render_prometheus(nw.sim.metrics)
        from_snapshot = render_prometheus(nw.sim.metrics.snapshot())
        assert from_registry == from_snapshot
        assert "repro_sim_time" in from_registry

    def test_merged_snapshot_renders(self):
        nw = run_call()
        merged = merge_snapshots([nw.sim.metrics.snapshot(),
                                  nw.sim.metrics.snapshot()])
        text = render_prometheus(merged)
        assert "repro_sim_time" in text

    def test_exposition_round_trips_under_strict_line_grammar(self):
        import re

        nw = run_call()
        snapshot = nw.sim.metrics.snapshot()
        text = render_prometheus(snapshot)
        help_re = re.compile(r"^# HELP (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) \S.*$")
        type_re = re.compile(
            r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
            r"(?P<kind>counter|gauge|summary|histogram|untyped)$"
        )
        sample_re = re.compile(
            r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
            r'(?:\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\\n]*"'
            r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\\n]*")*\})?'
            r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|inf|nan))$"
        )
        samples = {}
        pending_help = pending_type = None
        for line in text.splitlines():
            if line.startswith("# HELP "):
                m = help_re.match(line)
                assert m, f"bad HELP line: {line!r}"
                pending_help = m.group("name")
            elif line.startswith("# TYPE "):
                m = type_re.match(line)
                assert m, f"bad TYPE line: {line!r}"
                # HELP must immediately precede TYPE for the same series.
                assert m.group("name") == pending_help, line
                pending_type = m.group("name")
            else:
                m = sample_re.match(line)
                assert m, f"bad sample line: {line!r}"
                # Samples follow the header block of their family.
                assert m.group("name").startswith(pending_type), line
                samples[line.split(" ")[0]] = float(m.group("value"))
        # Round trip: counter values and histogram counts survive.
        for name, value in snapshot["counters"].items():
            assert samples[sanitize_name(name)] == value
        for name, summary in snapshot["histograms"].items():
            assert samples[sanitize_name(name) + "_count"] == summary["count"]
        assert samples["repro_sim_time"] == snapshot["sim_time"]
