"""Unit/integration tests for the H.323 substrate."""

import pytest

from repro.identities import E164Number, IPv4Address
from repro.h323.codec import CODECS, G711_ULAW, G729, GSM_FR, Vocoder
from repro.h323.gatekeeper import Gatekeeper
from repro.h323.terminal import H323Terminal
from repro.net.interfaces import Interface
from repro.net.ip import IPCloud
from repro.net.node import Network
from repro.sim.kernel import Simulator

GK_IP = IPv4Address.parse("192.0.2.1")


def make_h323(max_calls=None):
    sim = Simulator()
    net = Network(sim)
    cloud = net.add(IPCloud(sim))
    gk = Gatekeeper(sim, "GK", ip=GK_IP, max_concurrent_calls=max_calls)
    net.add(gk)
    net.connect(gk, cloud, Interface.IP, 0.005)
    gk.attach_to_cloud()

    def terminal(name, ip, alias, answer_delay=0.3):
        t = H323Terminal(
            sim, name, ip=IPv4Address.parse(ip),
            alias=E164Number.parse(alias), gk_ip=GK_IP,
            answer_delay=answer_delay,
        )
        net.add(t)
        net.connect(t, cloud, Interface.IP, 0.005)
        t.register()
        return t

    t1 = terminal("T1", "192.0.2.10", "+886222000001")
    t2 = terminal("T2", "192.0.2.11", "+886222000002")
    sim.run(until=0.5)
    return sim, gk, t1, t2


class TestCodec:
    def test_bitrates(self):
        assert GSM_FR.bitrate_bps == pytest.approx(13_200.0)
        assert G711_ULAW.bitrate_bps == pytest.approx(64_000.0)
        assert G729.bitrate_bps == pytest.approx(8_000.0)

    def test_codecs_registry(self):
        assert set(CODECS) == {"GSM-FR", "G.711u", "G.729"}

    def test_vocoder_delay_combines_codecs(self):
        v = Vocoder(GSM_FR, G711_ULAW, processing_ms=2.0)
        assert v.transcode_delay == pytest.approx((5.0 + 0.125 + 2.0) / 1000)

    def test_transcode_resizes_frames(self):
        v = Vocoder(GSM_FR, G711_ULAW)
        out = v.transcode(b"\x01" * 33)
        assert len(out) == G711_ULAW.frame_bytes
        down = Vocoder(G711_ULAW, GSM_FR).transcode(b"\x02" * 160)
        assert len(down) == GSM_FR.frame_bytes

    def test_transcode_counts(self):
        v = Vocoder(GSM_FR, G711_ULAW)
        for _ in range(5):
            v.transcode(b"")
        assert v.frames_transcoded == 5


class TestGatekeeper:
    def test_registration_populates_table(self):
        sim, gk, t1, t2 = make_h323()
        assert t1.registered and t2.registered
        reg = gk.resolve(t1.alias)
        assert reg.signal_address == t1.ip
        assert reg.signal_port == 1720

    def test_reregistration_overwrites_address(self):
        sim, gk, t1, t2 = make_h323()
        # t2 re-registers claiming t1's alias from a new address (roaming).
        t2.alias = t1.alias
        t2.register()
        sim.run(until=sim.now + 0.5)
        assert gk.resolve(t1.alias).signal_address == t2.ip

    def test_unregistration(self):
        sim, gk, t1, _ = make_h323()
        from repro.packets.ras import RasUrq

        t1.send_ip(GK_IP, RasUrq(seq=99, alias=t1.alias), dport=1719, sport=1719)
        sim.run(until=sim.now + 0.5)
        assert gk.resolve(t1.alias) is None

    def test_admission_rejects_unknown_alias(self):
        sim, gk, t1, _ = make_h323()
        rejected = []
        t1.on_rejected = rejected.append
        t1.place_call(E164Number.parse("+886229999999"))
        sim.run(until=sim.now + 2)
        assert len(rejected) == 1

    def test_concurrent_call_cap(self):
        sim, gk, t1, t2 = make_h323(max_calls=0)
        rejected = []
        t1.on_rejected = rejected.append
        t1.place_call(t2.alias)
        sim.run(until=sim.now + 2)
        assert rejected


class TestTerminalToTerminalCall:
    def test_full_lifecycle(self):
        sim, gk, t1, t2 = make_h323()
        ref = t1.place_call(t2.alias)
        assert sim.run_until_true(
            lambda: ref in t1.calls and t1.calls[ref].state == "in-call",
            timeout=10,
        )
        assert any(c.state == "in-call" for c in t2.calls.values())
        # Media both ways.
        t1.start_talking(ref, duration=0.5)
        ref2 = next(iter(t2.calls))
        t2.start_talking(ref2, duration=0.5)
        sim.run(until=sim.now + 1.0)
        assert t1.frames_received == 25
        assert t2.frames_received == 25
        # Release from the called side.
        t2.hangup(ref2)
        assert sim.run_until_true(lambda: ref not in t1.calls, timeout=10)
        sim.run(until=sim.now + 1)
        assert len(gk.call_records) == 1
        assert gk.call_records[0].complete

    def test_cdr_duration_reflects_call(self):
        sim, gk, t1, t2 = make_h323()
        ref = t1.place_call(t2.alias)
        sim.run_until_true(
            lambda: ref in t1.calls and t1.calls[ref].state == "in-call",
            timeout=10,
        )
        sim.run(until=sim.now + 3.0)  # hold the call 3 s
        t1.hangup(ref)
        sim.run(until=sim.now + 1)
        assert gk.call_records[0].reported_duration_ms >= 3000

    def test_alerting_before_connect(self):
        sim, gk, t1, t2 = make_h323()
        ref = t1.place_call(t2.alias)
        sim.run_until_true(
            lambda: ref in t1.calls and t1.calls[ref].state == "in-call",
            timeout=10,
        )
        call = t1.calls[ref]
        assert call.alerting_at is not None
        assert call.alerting_at < call.connected_at

    def test_called_terminal_busy(self):
        sim, gk, t1, t2 = make_h323()
        t3 = H323Terminal(
            sim, "T3", ip=IPv4Address.parse("192.0.2.12"),
            alias=E164Number.parse("+886222000003"), gk_ip=GK_IP,
        )
        gk.network.add(t3)
        gk.network.connect(t3, gk.peer(Interface.IP), Interface.IP, 0.005)
        t3.register()
        sim.run(until=sim.now + 0.5)
        ref1 = t1.place_call(t2.alias)
        sim.run_until_true(
            lambda: ref1 in t1.calls and t1.calls[ref1].state == "in-call",
            timeout=10,
        )
        # t2 is mid-call; a second terminal now admits but t2's second
        # admission is per call_ref so the call still completes: instead
        # verify the direct busy path by calling an endpoint with an
        # in-progress incoming call.
        assert t2.calls  # t2 busy with one call
        ref3 = t3.place_call(t2.alias)
        sim.run(until=sim.now + 3)
        # Second call either connected (terminal supports two) or cleanly
        # absent; the endpoint must never crash or leak half-open calls.
        assert all(c.state in ("in-call",) for c in t1.calls.values())

    def test_hangup_unknown_call_rejected(self):
        sim, gk, t1, _ = make_h323()
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            t1.hangup(12345)

    def test_place_call_requires_registration(self):
        sim = Simulator()
        net = Network(sim)
        cloud = net.add(IPCloud(sim))
        t = H323Terminal(
            sim, "T", ip=IPv4Address.parse("192.0.2.20"),
            alias=E164Number.parse("+886222000009"), gk_ip=GK_IP,
        )
        net.add(t)
        net.connect(t, cloud, Interface.IP, 0.005)
        from repro.errors import CallSetupError

        with pytest.raises(CallSetupError):
            t.place_call(E164Number.parse("+886222000001"))


class TestRegistrationTtl:
    def test_registration_expires_after_ttl(self):
        sim, gk, t1, _ = make_h323()
        gk.registrations[t1.alias].ttl = 2
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert gk.resolve(t1.alias) is None
        assert sim.metrics.counters("GK.ttl_expiries") == {"GK.ttl_expiries": 1}

    def test_expired_alias_rejects_admission(self):
        sim, gk, t1, t2 = make_h323()
        gk.registrations[t2.alias].ttl = 2
        sim.schedule(10.0, lambda: None)
        sim.run()
        rejected = []
        t1.on_rejected = rejected.append
        t1.place_call(t2.alias)
        sim.run(until=sim.now + 2)
        assert rejected

    def test_vmsc_keepalive_refreshes_registration(self):
        from repro.core import scenarios
        from repro.core.network import build_vgprs_network

        nw = build_vgprs_network(seed=81)
        nw.vmsc.gk_ttl = 4  # short TTL -> keepalive every 2 s
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
        scenarios.register_ms(nw, ms)
        nw.sim.run(until=nw.sim.now + 20.0)
        # Five keepalives later, the alias is still resolvable.
        assert nw.gk.resolve(ms.msisdn) is not None
        keepalives = nw.sim.metrics.counters("VMSC.gk_keepalives")
        assert keepalives.get("VMSC.gk_keepalives", 0) >= 5

    def test_without_keepalive_alias_would_age_out(self):
        from repro.core import scenarios
        from repro.core.network import build_vgprs_network

        nw = build_vgprs_network(seed=82)
        nw.vmsc.gk_ttl = 4
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
        scenarios.register_ms(nw, ms)
        # Suppress the keepalive to show what TTL expiry would do.
        nw.vmsc._keepalive_timers[ms.imsi].stop()
        nw.sim.run(until=nw.sim.now + 10.0)
        assert nw.gk.resolve(ms.msisdn) is None
