"""Tests for the kernel profiler, heartbeat and ObsSession plumbing."""

import json

from repro.obs.heartbeat import Heartbeat
from repro.obs.profiler import KernelProfiler
from repro.obs.session import ObsSession
from repro.sim.kernel import Simulator

import pytest


class TestKernelProfiler:
    def test_record_accumulates(self):
        p = KernelProfiler()
        p.record("A", 0.5)
        p.record("A", 0.25)
        p.record("B", 2.0)
        assert p.total_events == 3
        assert p.total_seconds == 2.75
        assert p.snapshot() == {
            "A": {"count": 2, "total_s": 0.75},
            "B": {"count": 1, "total_s": 2.0},
        }

    def test_top_sorts_by_time_then_key(self):
        p = KernelProfiler()
        p.record("slow", 3.0)
        p.record("tie_b", 1.0)
        p.record("tie_a", 1.0)
        p.record("fast", 0.1)
        assert [row[0] for row in p.top()] == ["slow", "tie_a", "tie_b", "fast"]
        assert [row[0] for row in p.top(n=2)] == ["slow", "tie_a"]

    def test_report_renders(self):
        p = KernelProfiler()
        for i in range(20):
            p.record(f"type_{i:02d}", 0.001 * (i + 1))
        text = p.report(n=5)
        assert "kernel profile" in text and "20 events" in text
        assert "type_19" in text  # heaviest shown
        assert "type_00" not in text  # beyond top-5
        assert "15 more event types" in text

    def test_empty_report(self):
        text = KernelProfiler().report()
        assert "0 events" in text  # no division-by-zero


class TestSimulatorIntegration:
    def run_some_events(self, sim, n=50):
        for i in range(n):
            sim.schedule(0.01 * (i + 1), lambda: None)
        return sim.run(until=10.0)

    def test_profiler_times_callbacks(self):
        sim = Simulator()
        profiler = sim.enable_profiler()
        assert sim.enable_profiler() is profiler  # idempotent
        executed = self.run_some_events(sim)
        assert profiler.total_events == executed == 50
        (key,) = profiler.stats
        assert "lambda" in key
        assert profiler.total_seconds > 0

    def test_disable_returns_to_fast_loop(self):
        sim = Simulator()
        profiler = sim.enable_profiler()
        self.run_some_events(sim)
        detached = sim.disable_profiler()
        assert detached is profiler and sim.profiler is None
        before = detached.total_events
        self.run_some_events(sim)  # fast loop: profiler sees nothing
        assert detached.total_events == before

    def test_events_executed_maintained_by_both_loops(self):
        fast, slow = Simulator(), Simulator()
        slow.count_events = True
        a = self.run_some_events(fast)
        b = self.run_some_events(slow)
        assert fast.events_executed == a
        assert slow.events_executed == b
        assert a == b

    def test_instrumented_loop_matches_fast_loop_ordering(self):
        def trace_of(instrumented):
            sim = Simulator()
            if instrumented:
                sim.enable_profiler()
            seen = []
            # Two same-time events must keep FIFO order in both loops.
            sim.schedule(1.0, lambda: seen.append("a"))
            sim.schedule(1.0, lambda: seen.append("b"))
            sim.schedule(0.5, lambda: seen.append("c"))
            sim.run(until=2.0)
            return seen, sim.now

        assert trace_of(True) == trace_of(False) == (["c", "a", "b"], 2.0)


class TestHeartbeat:
    def test_beats_and_counts(self):
        sim = Simulator()
        lines = []
        hb = Heartbeat(sim, period=1.0, sink=lines.append, label="soak")
        hb.start()
        for i in range(40):
            sim.schedule(0.1 * (i + 1), lambda: None)
        sim.run(until=3.5)
        hb.stop()
        assert hb.beats == 3 and len(lines) == 3
        assert lines[0].startswith("[hb soak] t=1.0s")
        assert "events=" in lines[0] and "live=" in lines[0]
        assert sim.count_events is False  # stop() restores the fast loop

    def test_extra_hook(self):
        sim = Simulator()
        lines = []
        hb = Heartbeat(sim, period=1.0, sink=lines.append,
                       extra=lambda: "calls=7")
        hb.start()
        sim.run(until=1.0)
        hb.stop()
        assert lines[0].endswith("calls=7")

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            Heartbeat(Simulator(), period=0.0)


class TestObsSession:
    def run_sim(self):
        sim = Simulator()
        sim.spans.open("demo", keys={"imsi": 1}).close()
        sim.metrics.counter("demo.counter").inc(3)
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        return sim

    def test_inactive_session_is_free(self):
        obs = ObsSession()
        assert not obs.active
        sim = Simulator()
        obs.watch(sim)
        assert sim.profiler is None
        obs.finish(echo=lambda line: pytest.fail(f"unexpected output {line!r}"))

    def test_finish_writes_all_artifacts(self, tmp_path):
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.prom"
        obs = ObsSession(trace_out=str(trace_path),
                         metrics_out=str(metrics_path), profile=True)
        assert obs.active
        echoed = []
        sim = self.run_sim()
        obs.watch(sim)
        obs.watch(sim)  # idempotent
        obs.finish(echo=echoed.append)

        records = [json.loads(l) for l in trace_path.read_text().splitlines()]
        assert records[0]["type"] == "run"
        assert any(r["type"] == "span" and r["name"] == "demo"
                   for r in records)
        assert "repro_demo_counter 3" in metrics_path.read_text()
        assert any("trace written" in line for line in echoed)
        assert any("metrics snapshot written" in line for line in echoed)

    def test_profile_report_echoed(self, tmp_path):
        obs = ObsSession(profile=True)
        sim = Simulator()
        obs.watch(sim)  # arms the profiler before the run
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        echoed = []
        obs.finish(echo=echoed.append)
        assert any("kernel profile [main]" in line for line in echoed)

    def test_metrics_merge_with_extra_snapshots(self, tmp_path):
        metrics_path = tmp_path / "m.prom"
        obs = ObsSession(metrics_out=str(metrics_path))
        sim = self.run_sim()
        obs.watch(sim)
        obs.extra_snapshots.append(sim.metrics.snapshot())
        obs.finish(echo=lambda line: None)
        # Two identical snapshots merge: the counter doubles.
        assert "repro_demo_counter 6" in metrics_path.read_text()

    def test_extra_snapshots_only(self, tmp_path):
        metrics_path = tmp_path / "m.prom"
        obs = ObsSession(metrics_out=str(metrics_path))
        obs.extra_snapshots.append(self.run_sim().metrics.snapshot())
        obs.finish(echo=lambda line: None)
        assert "repro_demo_counter 3" in metrics_path.read_text()

    def test_heartbeat_armed_and_stopped(self):
        obs = ObsSession(heartbeat=1.0)
        sim = Simulator()
        obs.watch(sim)
        assert sim.count_events is True
        obs.finish(echo=lambda line: None)
        assert sim.count_events is False
