"""Tests for the idle-deactivation vGPRS variant (the §6 ablation)."""

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.gprs.pdp import NSAPI_SIGNALLING

IMSI1 = "466920000000001"
MSISDN1 = "+886935000001"
TERM1 = "+886222000001"
IDLE_S = 2.0


@pytest.fixture
def idle_variant():
    nw = build_vgprs_network(seed=51, idle_deactivate_after=IDLE_S)
    ms = nw.add_ms("MS1", IMSI1, MSISDN1, answer_delay=0.4)
    term = nw.add_terminal("TERM1", TERM1, answer_delay=0.4)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    return nw, ms, term


class TestIdleDeactivation:
    def test_context_dropped_after_idle_timeout(self, idle_variant):
        nw, ms, _ = idle_variant
        entry = nw.vmsc.ms_table.get(ms.imsi)
        assert entry.signalling_ready
        nw.sim.run(until=nw.sim.now + IDLE_S + 1.0)
        assert not entry.signalling_ready
        assert nw.sgsn.context_count() == 0
        assert nw.sim.metrics.counters("VMSC.idle_deactivations") == {
            "VMSC.idle_deactivations": 1
        }

    def test_gk_registration_survives_deactivation(self, idle_variant):
        nw, ms, _ = idle_variant
        nw.sim.run(until=nw.sim.now + IDLE_S + 1.0)
        assert nw.gk.resolve(ms.msisdn) is not None

    def test_mo_call_reactivates_and_connects(self, idle_variant):
        nw, ms, term = idle_variant
        nw.sim.run(until=nw.sim.now + IDLE_S + 1.0)
        outcome = scenarios.call_ms_to_terminal(nw, ms, term)
        assert outcome.connected_at is not None
        entry = nw.vmsc.ms_table.get(ms.imsi)
        assert entry.signalling_ready

    def test_reactivation_reuses_the_same_address(self, idle_variant):
        """The gatekeeper still maps the alias to the old address, so the
        GGSN must re-issue it (the static-addressing requirement)."""
        nw, ms, term = idle_variant
        entry = nw.vmsc.ms_table.get(ms.imsi)
        ip_before = entry.ip
        nw.sim.run(until=nw.sim.now + IDLE_S + 1.0)
        scenarios.call_ms_to_terminal(nw, ms, term)
        assert entry.ip == ip_before

    def test_mt_call_via_network_requested_activation(self, idle_variant):
        nw, ms, term = idle_variant
        nw.sim.run(until=nw.sim.now + IDLE_S + 1.0)
        outcome = scenarios.call_terminal_to_ms(nw, term, ms)
        assert outcome.connected_at is not None
        assert nw.sim.metrics.counters("VMSC.network_requested_pdp") == {
            "VMSC.network_requested_pdp": 1
        }
        assert nw.sim.metrics.counters("GGSN.pdu_notifications")

    def test_active_call_not_torn_down_by_idle_timer(self, idle_variant):
        nw, ms, term = idle_variant
        scenarios.call_ms_to_terminal(nw, ms, term)
        # Stay in the call far longer than the idle timeout.
        nw.sim.run(until=nw.sim.now + 2 * IDLE_S)
        entry = nw.vmsc.ms_table.get(ms.imsi)
        assert ms.state == "in-call"
        assert entry.signalling_ready and entry.voice_ready

    def test_timer_rearms_after_each_call(self, idle_variant):
        nw, ms, term = idle_variant
        for _ in range(2):
            nw.sim.run(until=nw.sim.now + IDLE_S + 1.0)
            scenarios.call_ms_to_terminal(nw, ms, term)
            scenarios.hangup_from_ms(nw, ms)
            nw.sim.run(until=nw.sim.now + 1.0)
        nw.sim.run(until=nw.sim.now + IDLE_S + 1.0)
        assert nw.sim.metrics.counters("VMSC.idle_deactivations") == {
            "VMSC.idle_deactivations": 3
        }

    def test_default_vgprs_never_deactivates(self):
        nw = build_vgprs_network(seed=52)
        ms = nw.add_ms("MS1", IMSI1, MSISDN1)
        scenarios.register_ms(nw, ms)
        nw.sim.run(until=nw.sim.now + 30.0)
        assert nw.vmsc.ms_table.get(ms.imsi).signalling_ready
        assert nw.sim.metrics.counters("VMSC.idle_deactivations") == {}

    def test_setup_delay_penalty_exists(self, idle_variant):
        """The paper's prediction: 'may significantly increase the call
        setup time'."""
        nw, ms, term = idle_variant
        # Warm call (context up).
        warm = scenarios.call_ms_to_terminal(nw, ms, term)
        scenarios.hangup_from_ms(nw, ms)
        # Cold call (context dropped by the idle timer).
        nw.sim.run(until=nw.sim.now + IDLE_S + 1.0)
        entry = nw.vmsc.ms_table.get(ms.imsi)
        assert not entry.signalling_ready
        cold = scenarios.call_ms_to_terminal(nw, ms, term)
        assert cold.setup_delay > warm.setup_delay
