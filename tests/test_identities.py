"""Unit tests for subscriber and network identities."""

import pytest

from repro.errors import AddressError
from repro.identities import (
    IMSI,
    LAI,
    TMSI,
    CellId,
    E164Number,
    IPv4Address,
    TunnelId,
    as_e164,
)


class TestImsi:
    def test_parts(self):
        imsi = IMSI("466920000000001")
        assert imsi.mcc == "466"
        assert imsi.mnc == "92"
        assert imsi.msin == "0000000001"
        assert str(imsi) == "466920000000001"

    def test_non_digits_rejected(self):
        with pytest.raises(AddressError):
            IMSI("46692000000000a")

    def test_too_long_rejected(self):
        with pytest.raises(AddressError):
            IMSI("4" * 16)

    def test_too_short_rejected(self):
        with pytest.raises(AddressError):
            IMSI("12345")

    def test_hashable_and_equal(self):
        assert IMSI("466920000000001") == IMSI("466920000000001")
        assert len({IMSI("466920000000001"), IMSI("466920000000001")}) == 1


class TestTmsi:
    def test_str(self):
        assert str(TMSI(0xDEADBEEF)) == "TMSI:deadbeef"

    def test_range(self):
        with pytest.raises(AddressError):
            TMSI(1 << 32)
        with pytest.raises(AddressError):
            TMSI(-1)


class TestE164:
    def test_str(self):
        assert str(E164Number("886", "35712121")) == "+88635712121"

    def test_parse_longest_country_code(self):
        n = E164Number.parse("+85221234567")
        assert n.country_code == "852"
        assert n.national == "21234567"

    def test_parse_requires_plus(self):
        with pytest.raises(AddressError):
            E164Number.parse("85221234567")

    def test_parse_unknown_cc(self):
        with pytest.raises(AddressError):
            E164Number.parse("+99912345", known_ccs=("44", "886"))

    def test_is_international_from(self):
        n = E164Number("44", "7700900123")
        assert n.is_international_from("852")
        assert not n.is_international_from("44")

    def test_bad_cc(self):
        with pytest.raises(AddressError):
            E164Number("44445", "123")
        with pytest.raises(AddressError):
            E164Number("4a", "123")

    def test_bad_national(self):
        with pytest.raises(AddressError):
            E164Number("44", "")
        with pytest.raises(AddressError):
            E164Number("44", "12x45")


class TestAsE164:
    def test_passthrough(self):
        n = E164Number("886", "935000001")
        assert as_e164(n) is n

    def test_parses_string(self):
        assert as_e164("+85221234567") == E164Number("852", "21234567")

    def test_rejects_bad_input_with_named_error(self):
        for bad in ("+000000000000", "no-plus", 12345, None):
            with pytest.raises(AddressError):
                as_e164(bad)

    def test_place_call_rejects_misuse_before_state_change(self):
        """The sim-facing contract: misuse raises a named error and the
        handset stays usable (no half-opened call state)."""
        from repro.core import scenarios
        from repro.core.network import build_vgprs_network

        nw = build_vgprs_network()
        ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
        term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.4)
        nw.sim.run(until=0.5)
        scenarios.register_ms(nw, ms)
        with pytest.raises(AddressError):
            ms.place_call("+000000000000")
        assert ms.state == "idle"
        outcome = scenarios.call_ms_to_terminal(nw, ms, term)
        assert outcome.connected_at is not None


class TestIPv4:
    def test_parse_and_str_roundtrip(self):
        for text in ("0.0.0.0", "10.1.2.3", "192.0.2.1", "255.255.255.255"):
            assert str(IPv4Address.parse(text)) == text

    def test_value_backing(self):
        assert IPv4Address.parse("10.0.0.1").value == 0x0A000001

    def test_bad_formats(self):
        for text in ("10.0.0", "10.0.0.0.1", "10.0.0.256", "a.b.c.d", ""):
            with pytest.raises(AddressError):
                IPv4Address.parse(text)

    def test_out_of_range_value(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")


class TestTunnelId:
    def test_str(self):
        tid = TunnelId(IMSI("466920000000001"), 5)
        assert str(tid) == "TID:466920000000001/5"

    def test_nsapi_range(self):
        with pytest.raises(AddressError):
            TunnelId(IMSI("466920000000001"), 16)

    def test_equality_keys_dicts(self):
        a = TunnelId(IMSI("466920000000001"), 5)
        b = TunnelId(IMSI("466920000000001"), 5)
        c = TunnelId(IMSI("466920000000001"), 6)
        assert a == b and a != c
        assert {a: 1}[b] == 1


class TestLaiCell:
    def test_lai_str(self):
        assert str(LAI("466", "92", 0x1234)) == "LAI:466-92-1234"

    def test_lai_validation(self):
        with pytest.raises(AddressError):
            LAI("46", "92", 1)
        with pytest.raises(AddressError):
            LAI("466", "9", 1)
        with pytest.raises(AddressError):
            LAI("466", "92", 1 << 16)

    def test_cell_id(self):
        lai = LAI("466", "92", 1)
        cell = CellId(lai, 7)
        assert str(cell).endswith("ci=0007")
        with pytest.raises(AddressError):
            CellId(lai, 1 << 16)
