"""Property-based tests (hypothesis) on codecs, identities, the event
queue and core invariants."""

import heapq

from hypothesis import given, settings, strategies as st

from repro.identities import IMSI, E164Number, IPv4Address, TunnelId
from repro.packets.base import Packet
from repro.packets.bssap import UmSetup
from repro.packets.fields import (
    BytesField,
    DigitsField,
    E164Field,
    ImsiField,
    IntField,
    IPv4AddressField,
    OptionalField,
    ShortField,
    StrField,
    TunnelIdField,
    _pack_bcd,
    _unpack_bcd,
)
from repro.packets.ip import IPv4, UDP
from repro.packets.q931 import Q931Setup
from repro.packets.ras import RasArq
from repro.sim.events import EventQueue
from repro.sim.metrics import Gauge, Histogram

digits_st = st.text(alphabet="0123456789", min_size=0, max_size=40)
imsi_st = st.text(alphabet="0123456789", min_size=6, max_size=15).map(IMSI)
cc_st = st.sampled_from(["1", "44", "852", "886"])
e164_st = st.builds(
    E164Number,
    cc_st,
    st.text(alphabet="0123456789", min_size=1, max_size=12),
)
ipv4_st = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4Address)


class TestBcdProperties:
    @given(digits_st)
    def test_bcd_roundtrip(self, digits):
        wire = _pack_bcd(digits)
        back, offset = _unpack_bcd(wire, 0, "t")
        assert back == digits
        assert offset == len(wire)

    @given(digits_st)
    def test_bcd_size_bound(self, digits):
        # length byte + ceil(n/2) nibble bytes
        assert len(_pack_bcd(digits)) == 1 + (len(digits) + 1) // 2


class TestFieldProperties:
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_short_roundtrip(self, value):
        f = ShortField("x")
        assert f.decode(f.encode(value), 0) == (value, 2)

    @given(st.binary(max_size=200))
    def test_bytes_roundtrip(self, value):
        f = BytesField("x")
        decoded, _ = f.decode(f.encode(value), 0)
        assert decoded == value

    @given(st.text(max_size=100))
    def test_str_roundtrip(self, value):
        f = StrField("x")
        decoded, _ = f.decode(f.encode(value), 0)
        assert decoded == value

    @given(imsi_st)
    def test_imsi_roundtrip(self, imsi):
        f = ImsiField("x")
        decoded, _ = f.decode(f.encode(imsi), 0)
        assert decoded == imsi

    @given(e164_st)
    def test_e164_roundtrip(self, number):
        f = E164Field("x")
        decoded, _ = f.decode(f.encode(number), 0)
        assert decoded == number

    @given(ipv4_st)
    def test_ipv4_roundtrip(self, address):
        f = IPv4AddressField("x")
        decoded, _ = f.decode(f.encode(address), 0)
        assert decoded == address

    @given(imsi_st, st.integers(min_value=0, max_value=15))
    def test_tunnel_id_roundtrip(self, imsi, nsapi):
        f = TunnelIdField("x")
        tid = TunnelId(imsi, nsapi)
        decoded, _ = f.decode(f.encode(tid), 0)
        assert decoded == tid

    @given(st.one_of(st.none(), st.integers(min_value=0, max_value=0xFFFFFFFF)))
    def test_optional_roundtrip(self, value):
        f = OptionalField(IntField("x"))
        decoded, _ = f.decode(f.encode(value), 0)
        assert decoded == value


class TestPacketProperties:
    @given(ipv4_st, ipv4_st, st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_ip_udp_roundtrip(self, src, dst, sport, dport):
        pkt = IPv4(src=src, dst=dst) / UDP(sport=sport, dport=dport)
        assert IPv4.parse(pkt.build()) == pkt

    @given(
        st.integers(0, 0xFFFFFFFF), e164_st, st.one_of(st.none(), e164_st),
        ipv4_st, st.integers(0, 0xFFFF), ipv4_st, st.integers(0, 0xFFFF),
    )
    def test_q931_setup_roundtrip(
        self, ref, called, calling, sig, sport, media, mport
    ):
        pkt = Q931Setup(
            call_ref=ref, called=called, calling=calling,
            signal_address=sig, signal_port=sport,
            media_address=media, media_port=mport,
        )
        assert Q931Setup.parse(pkt.build()) == pkt

    @given(
        st.integers(0, 0xFFFF), st.integers(0, 0xFFFFFFFF), e164_st,
        st.one_of(st.none(), e164_st), st.booleans(),
    )
    def test_ras_arq_roundtrip(self, seq, ref, alias, called, answer):
        pkt = RasArq(
            seq=seq, call_ref=ref, endpoint_alias=alias,
            called_alias=called, answer_call=int(answer),
        )
        assert RasArq.parse(pkt.build()) == pkt

    @given(
        st.integers(0, 0xFFFFFFFF), st.one_of(st.none(), imsi_st),
        st.one_of(st.none(), e164_st), st.one_of(st.none(), e164_st),
    )
    def test_um_setup_roundtrip(self, ti, imsi, called, calling):
        pkt = UmSetup(ti=ti, imsi=imsi, called=called, calling=calling)
        assert UmSetup.parse(pkt.build()) == pkt

    @given(st.integers(0, 0xFFFFFFFF), e164_st, ipv4_st)
    def test_parse_never_accepts_mutations_silently(self, ref, called, sig):
        """Flipping any wire byte must either change the parsed packet or
        fail to parse — never return the original packet unchanged."""
        pkt = Q931Setup(
            call_ref=ref, called=called, signal_address=sig, signal_port=1720,
            media_address=sig, media_port=5004,
        )
        wire = bytearray(pkt.build())
        for i in range(len(wire)):
            mutated = bytearray(wire)
            mutated[i] ^= 0xFF
            try:
                back = Packet.parse(bytes(mutated))
            except Exception:
                continue
            assert back != pkt


class TestIdentityProperties:
    @given(e164_st)
    def test_e164_parse_inverts_str(self, number):
        assert E164Number.parse(str(number)) == number

    @given(ipv4_st)
    def test_ipv4_parse_inverts_str(self, address):
        assert IPv4Address.parse(str(address)) == address

    @given(imsi_st)
    def test_imsi_parts_recompose(self, imsi):
        assert imsi.mcc + imsi.mnc + imsi.msin == imsi.digits


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=60))
    @settings(max_examples=50)
    def test_pop_order_matches_sorted_times(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == sorted(times)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40),
        st.sets(st.integers(min_value=0, max_value=39)),
    )
    @settings(max_examples=50)
    def test_cancellation_removes_exactly_those(self, times, cancel_idx):
        q = EventQueue()
        events = [q.push(t, lambda: None) for t in times]
        cancelled = set()
        for i in cancel_idx:
            if i < len(events) and not events[i].cancelled:
                events[i].cancel()
                q.note_cancelled()
                cancelled.add(i)
        survivors = sorted(
            t for i, t in enumerate(times) if i not in cancelled
        )
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == survivors


class TestMetricProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    @settings(max_examples=50)
    def test_quantiles_are_monotone_and_bounded(self, samples):
        h = Histogram("h")
        for s in samples:
            h.observe(s)
        q = [h.quantile(x / 10) for x in range(11)]
        assert q == sorted(q)
        assert q[0] == min(samples)
        assert q[-1] == max(samples)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=10.0),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_gauge_integral_matches_manual_sum(self, steps):
        clock = {"t": 0.0}
        g = Gauge("g", clock=lambda: clock["t"])
        expected = 0.0
        level = 0.0
        for dt, value in steps:
            expected += level * dt
            clock["t"] += dt
            g.set(value)
            level = value
        assert abs(g.integral() - expected) < 1e-6 * max(1.0, abs(expected))
