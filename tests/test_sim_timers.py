"""Unit tests for protocol timers."""

from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer, Timer


class TestTimer:
    def test_fires_after_duration(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, "T1", 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        assert fired == [2.0]
        assert timer.expiries == 1

    def test_stop_prevents_expiry(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, "T1", 2.0, lambda: fired.append(1))
        timer.start()
        sim.schedule(1.0, timer.stop)
        sim.run()
        assert fired == []
        assert not timer.running

    def test_restart_extends_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, "T1", 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(1.5, timer.restart)
        sim.run()
        assert fired == [3.5]

    def test_start_with_override_duration(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, "T1", 10.0, lambda: fired.append(sim.now))
        timer.start(duration=1.0)
        sim.run()
        assert fired == [1.0]

    def test_running_property(self):
        sim = Simulator()
        timer = Timer(sim, "T1", 1.0, lambda: None)
        assert not timer.running
        timer.start()
        assert timer.running
        sim.run()
        assert not timer.running

    def test_stop_when_not_running_is_noop(self):
        sim = Simulator()
        timer = Timer(sim, "T1", 1.0, lambda: None)
        timer.stop()
        assert not timer.running

    def test_can_restart_after_expiry(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, "T1", 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        timer.start()
        sim.run()
        assert fired == [1.0, 2.0]
        assert timer.expiries == 2


class TestPeriodicTimer:
    def test_ticks_repeatedly(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, "P1", 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]
        assert timer.ticks == 3

    def test_stop_halts_ticking(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, "P1", 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run()
        assert ticks == [1.0, 2.0]

    def test_callback_may_stop_timer(self):
        sim = Simulator()
        ticks = []

        def once():
            ticks.append(sim.now)
            timer.stop()

        timer = PeriodicTimer(sim, "P1", 1.0, once)
        timer.start()
        sim.run(until=10.0)
        assert ticks == [1.0]
