"""Tests for hop recording, latency waterfalls and the timeline export."""

import io
import json
from types import SimpleNamespace

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.obs.export import export_trace_jsonl
from repro.obs.hops import (
    FIGURE3_LINK_ORDER,
    HopRecorder,
    render_waterfall,
    waterfall_rows,
)
from repro.obs.timeline import (
    export_runs_timeline,
    export_timeline,
)
from repro.sim.kernel import Simulator


def run_call(arm_hops=True):
    nw = build_vgprs_network()
    if arm_hops:
        nw.sim.hops = HopRecorder(nw.sim)
    ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
    term = nw.add_terminal("TERM1", "+886222000001", answer_delay=0.6)
    nw.sim.run(until=0.5)
    scenarios.register_ms(nw, ms)
    scenarios.call_ms_to_terminal(nw, ms, term)
    scenarios.hangup_from_ms(nw, ms)
    nw.sim.run(until=nw.sim.now + 1.0)
    return nw


def fake_packet(name):
    return SimpleNamespace(flow_name=lambda: name)


class TestHopRecorder:
    def test_records_signalling_segments(self):
        nw = run_call()
        hops = nw.sim.hops
        assert hops.segments
        for seg in hops.segments:
            assert seg.end >= seg.start
            assert seg.duration == seg.end - seg.start
        # The Figure-3 stack shows up as interfaces.
        assert "Um" in hops.by_interface()

    def test_media_frames_are_skipped(self):
        nw = run_call()
        quiet = nw.sim.trace.quiet_names
        assert quiet  # the trace recorder does quieten media frames
        assert not any(s.message in quiet for s in nw.sim.hops.segments)

    def test_per_link_histograms_registered(self):
        nw = run_call()
        names = [h.name for h in nw.sim.metrics.histogram_items()]
        hop_names = [n for n in names if n.startswith("hop.")]
        assert hop_names
        # hop.<interface>.<message>, interface from the link layer.
        assert any(n.startswith("hop.Um.") for n in hop_names)

    def test_armed_recorder_keeps_trace_byte_identical(self):
        def trace(arm):
            buf = io.StringIO()
            export_trace_jsonl(run_call(arm).sim, buf)
            return buf.getvalue()

        assert trace(False) == trace(True)

    def test_max_segments_drops_oldest_half(self):
        sim = Simulator()
        rec = HopRecorder(sim, max_segments=10)
        a, b = SimpleNamespace(name="a"), SimpleNamespace(name="b")
        for i in range(11):
            rec.on_transmit(a, b, "Um", fake_packet(f"Sig{i}"), 0.01)
        assert len(rec.segments) == 5
        assert rec.dropped == 6
        assert rec.segments[0].message == "Sig6"

    def test_max_segments_validation(self):
        with pytest.raises(ValueError):
            HopRecorder(Simulator(), max_segments=1)

    def test_index_keys_match_trace_identity(self):
        nw = run_call()
        index = nw.sim.hops.index()
        seg = nw.sim.hops.segments[0]
        assert index[(seg.message, seg.src, seg.dst, seg.end)].start == \
            seg.start


class TestWaterfall:
    def test_rows_in_figure3_order_with_shares(self):
        nw = run_call()
        span = next(s for s in nw.sim.spans.spans
                    if s.name == "registration")
        rows = waterfall_rows(span, nw.sim.hops)
        assert rows
        order = [r["interface"] for r in rows]
        ranks = [FIGURE3_LINK_ORDER.index(i) if i in FIGURE3_LINK_ORDER
                 else len(FIGURE3_LINK_ORDER) for i in order]
        assert ranks == sorted(ranks)
        for row in rows:
            assert row["hops"] >= 1
            assert 0.0 <= row["share"] <= 1.0
        # Registration crosses the air interface (Figure 4).
        assert "Um" in order

    def test_render_contains_bars_and_totals(self):
        nw = run_call()
        span = next(s for s in nw.sim.spans.spans
                    if s.name == "registration")
        text = render_waterfall(span, nw.sim.hops)
        assert text.startswith("registration")
        assert "#" in text and "hops)" in text
        assert "Um" in text

    def test_span_without_hops_renders_placeholder(self):
        sim = Simulator()
        rec = HopRecorder(sim)
        span = SimpleNamespace(name="empty", span_id=1, start=0.0, end=1.0,
                               entries=[])
        assert "no link hops" in render_waterfall(span, rec)


class TestTimelineExport:
    def test_document_shape_and_phases(self):
        nw = run_call()
        doc = export_timeline(nw.sim, nw.sim.hops)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["link_order"] == list(FIGURE3_LINK_ORDER)
        events = doc["traceEvents"]
        assert events
        assert {e["ph"] for e in events} <= {"M", "X", "b", "e"}
        for e in events:
            if e["ph"] in ("b", "e", "X"):
                assert e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 0
                assert e["cat"] == "hop"
                assert set(e["args"]) == {"src", "dst", "interface"}

    def test_async_span_events_balance(self):
        nw = run_call()
        events = export_timeline(nw.sim, nw.sim.hops)["traceEvents"]
        begins = [e["id"] for e in events if e["ph"] == "b"]
        ends = [e["id"] for e in events if e["ph"] == "e"]
        assert begins and sorted(begins) == sorted(ends)
        assert len(begins) == len(nw.sim.spans.spans)

    def test_export_is_deterministic(self):
        def dump():
            nw = run_call()
            return json.dumps(export_timeline(nw.sim, nw.sim.hops),
                              sort_keys=True)

        assert dump() == dump()

    def test_write_round_trips_as_json(self, tmp_path):
        nw = run_call()
        path = str(tmp_path / "timeline.json")
        doc = export_timeline(nw.sim, nw.sim.hops, path=path)
        with open(path) as fh:
            assert json.load(fh) == doc

    def test_multi_run_namespaces_pids_and_labels(self):
        a, b = run_call(), run_call()
        doc = export_runs_timeline([("one", a.sim), ("two", b.sim)])
        events = doc["traceEvents"]
        pids_one = {e["pid"] for e in events if e["pid"] in (1, 2)}
        pids_two = {e["pid"] for e in events if e["pid"] in (3, 4)}
        assert pids_one and pids_two
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert "one: procedures" in names and "two: links" in names

    def test_single_run_has_no_label_prefix(self):
        nw = run_call()
        doc = export_runs_timeline([("only", nw.sim)])
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert "procedures" in names
