"""Unit tests for the packet base class and the protocol message sets."""

import pytest

from repro.errors import PacketError
from repro.identities import IMSI, E164Number, IPv4Address, TunnelId
from repro.packets.base import Packet, Raw
from repro.packets.bssap import (
    AuthenticationRequest,
    TchFrame,
    UmLocationUpdateRequest,
    UmSetup,
)
from repro.packets.gmm import ActivatePdpContextRequest, GprsAttachRequest
from repro.packets.gtp import GtpCreatePdpContextRequest, GtpHeader, MSG_T_PDU
from repro.packets.ip import IPv4, TCPLite, UDP
from repro.packets.isup import IsupIam, IsupRel, PcmFrame
from repro.packets.map import MapInsertSubsData, MapUpdateLocationArea
from repro.packets.q931 import Q931Connect, Q931ReleaseComplete, Q931Setup
from repro.packets.ras import RasAcf, RasArq, RasRrq
from repro.packets.rtp import RtpPacket

IMSI1 = IMSI("466920000000001")
NUM = E164Number("886", "935000001")
IP_A = IPv4Address.parse("10.0.0.1")
IP_B = IPv4Address.parse("10.0.0.2")


class TestLayering:
    def test_div_stacks_layers(self):
        pkt = IPv4(src=IP_A, dst=IP_B) / UDP(sport=1, dport=2) / Raw(data=b"x")
        layers = list(pkt.layers())
        assert [type(l) for l in layers] == [IPv4, UDP, Raw]

    def test_div_appends_to_innermost(self):
        pkt = IPv4(src=IP_A, dst=IP_B) / UDP(sport=1, dport=2)
        pkt = pkt / Raw(data=b"y")
        assert isinstance(pkt.innermost(), Raw)

    def test_get_layer_and_haslayer(self):
        pkt = IPv4(src=IP_A, dst=IP_B) / UDP(sport=9, dport=10)
        assert pkt.get_layer(UDP).sport == 9
        assert pkt.haslayer(IPv4)
        assert not pkt.haslayer(Raw)

    def test_flow_name_picks_innermost_visible(self):
        pkt = IPv4(src=IP_A, dst=IP_B) / UDP(sport=1, dport=2) / RasRrq(
            seq=1, alias=NUM, signal_address=IP_A, signal_port=1720
        )
        assert pkt.flow_name() == "RAS_RRQ"

    def test_flow_name_falls_back_to_outermost(self):
        pkt = IPv4(src=IP_A, dst=IP_B) / UDP(sport=1, dport=2)
        assert pkt.flow_name() == "IPv4"

    def test_trace_info_merges_layers(self):
        pkt = IPv4(src=IP_A, dst=IP_B) / Q931Setup(
            call_ref=7, called=NUM, signal_address=IP_A, signal_port=1720,
            media_address=IP_A, media_port=5004,
        )
        info = pkt.trace_info()
        assert info["ip_src"] == "10.0.0.1"
        assert info["call_ref"] == 7


class TestFieldsAccess:
    def test_unknown_field_rejected(self):
        with pytest.raises(PacketError):
            UDP(sport=1, dport=2, bogus=3)

    def test_attribute_read_write(self):
        pkt = UDP(sport=1, dport=2)
        pkt.sport = 99
        assert pkt.sport == 99

    def test_attribute_write_validates(self):
        pkt = UDP(sport=1, dport=2)
        with pytest.raises(Exception):
            pkt.sport = -5

    def test_missing_attribute_raises(self):
        with pytest.raises(AttributeError):
            UDP(sport=1, dport=2).nonexistent

    def test_defaults_applied(self):
        pkt = IPv4(src=IP_A, dst=IP_B)
        assert pkt.ttl == 64


class TestWireCodec:
    def assert_roundtrip(self, pkt):
        wire = pkt.build()
        back = type(pkt).parse(wire)
        assert back == pkt
        return wire

    def test_single_layer_roundtrip(self):
        self.assert_roundtrip(UDP(sport=1719, dport=1719))

    def test_multi_layer_roundtrip(self):
        self.assert_roundtrip(
            IPv4(src=IP_A, dst=IP_B)
            / TCPLite(sport=1720, dport=1720)
            / Q931Setup(
                call_ref=1, called=NUM, calling=NUM,
                signal_address=IP_A, signal_port=1720,
                media_address=IP_A, media_port=5004,
            )
        )

    def test_unset_mandatory_field_fails_build(self):
        with pytest.raises(PacketError):
            IPv4().build()  # src/dst unset

    def test_parse_wrong_outer_class(self):
        wire = UDP(sport=1, dport=2).build()
        with pytest.raises(PacketError):
            IPv4.parse(wire)

    def test_parse_base_class_dispatches(self):
        wire = UDP(sport=1, dport=2).build()
        assert isinstance(Packet.parse(wire), UDP)

    def test_trailing_garbage_rejected(self):
        wire = UDP(sport=1, dport=2).build() + b"\x00"
        with pytest.raises(PacketError):
            Packet.parse(wire)

    def test_unknown_wire_id(self):
        with pytest.raises(PacketError):
            Packet.parse(b"\xff\xff")

    def test_copy_is_deep_for_chain(self):
        pkt = IPv4(src=IP_A, dst=IP_B) / UDP(sport=1, dport=2)
        clone = pkt.copy()
        clone.get_layer(UDP).sport = 42
        assert pkt.get_layer(UDP).sport == 1
        assert clone == IPv4(src=IP_A, dst=IP_B) / UDP(sport=42, dport=2)

    def test_equality_includes_payload(self):
        a = IPv4(src=IP_A, dst=IP_B) / UDP(sport=1, dport=2)
        b = IPv4(src=IP_A, dst=IP_B) / UDP(sport=1, dport=3)
        assert a != b

    def test_show_contains_fields(self):
        text = (IPv4(src=IP_A, dst=IP_B) / UDP(sport=7, dport=8)).show()
        assert "IPv4" in text and "sport" in text

    def test_repr_skips_unset(self):
        assert "calling" not in repr(UmSetup(ti=1, imsi=IMSI1, called=NUM))


PROTO_SAMPLES = [
    UmLocationUpdateRequest(imsi=IMSI1, lai="LAI-1"),
    UmSetup(ti=1, imsi=IMSI1, called=NUM, calling=NUM),
    AuthenticationRequest(imsi=IMSI1, rand=b"\x01" * 16),
    TchFrame(ti=1, imsi=IMSI1, seq=3, gen_time_us=123456, voice=b"\x00" * 33),
    MapUpdateLocationArea(invoke_id=1, imsi=IMSI1, lai="LAI-1"),
    MapInsertSubsData(invoke_id=2, imsi=IMSI1, msisdn=NUM),
    GprsAttachRequest(imsi=IMSI1),
    ActivatePdpContextRequest(imsi=IMSI1, nsapi=5),
    GtpHeader(msg_type=MSG_T_PDU, seq=9, tid=TunnelId(IMSI1, 5)),
    GtpCreatePdpContextRequest(nsapi=5, sgsn_address="SGSN"),
    RasRrq(seq=1, alias=NUM, signal_address=IP_A, signal_port=1720),
    RasArq(seq=2, call_ref=10, endpoint_alias=NUM, called_alias=NUM),
    RasAcf(seq=3, call_ref=10, dest_signal_address=IP_B, dest_signal_port=1720),
    Q931Setup(call_ref=5, called=NUM, signal_address=IP_A, signal_port=1720,
              media_address=IP_A, media_port=5004),
    Q931Connect(call_ref=5, media_address=IP_B, media_port=5004),
    Q931ReleaseComplete(call_ref=5),
    IsupIam(cic=77, called=NUM, calling=NUM),
    IsupRel(cic=77),
    PcmFrame(cic=77, seq=2, gen_time_us=55),
    RtpPacket(seq=1, timestamp=160, ssrc=42, gen_time_us=1000, frame=b"\x00" * 160),
]


@pytest.mark.parametrize("pkt", PROTO_SAMPLES, ids=lambda p: type(p).__name__)
def test_protocol_message_roundtrip(pkt):
    wire = pkt.build()
    assert type(pkt).parse(wire) == pkt


@pytest.mark.parametrize("pkt", PROTO_SAMPLES, ids=lambda p: type(p).__name__)
def test_protocol_message_tunnelled_roundtrip(pkt):
    """Every message survives encapsulation in IP/UDP/GTP."""
    tid = TunnelId(IMSI1, 5)
    frame = (
        IPv4(src=IP_A, dst=IP_B)
        / UDP(sport=3386, dport=3386)
        / GtpHeader(msg_type=MSG_T_PDU, seq=0, tid=tid)
        / pkt.copy()
    )
    back = IPv4.parse(frame.build())
    assert back == frame
    assert back.flow_name() == frame.flow_name()
    if pkt.show_in_flow:
        assert back.flow_name() == pkt.flow_name()


def test_wire_ids_unique_across_registry():
    from repro.packets.base import _WIRE_REGISTRY

    assert len(_WIRE_REGISTRY) == len(set(_WIRE_REGISTRY))
    names = [cls.__name__ for cls in _WIRE_REGISTRY.values()]
    assert len(names) == len(set(names))


def test_duplicate_field_names_rejected():
    from repro.packets.fields import ByteField

    with pytest.raises(PacketError):
        class Dup(Packet):  # noqa: F811
            name = "Dup"
            fields = (ByteField("x"), ByteField("x"))
