"""Equivalence and determinism of the fluid media model.

The fluid model (:mod:`repro.media.fluid`) replaces per-frame talk-spurt
events with one calibration probe plus an analytic flush per spurt.  It
is only admissible because these tests hold it to the event path across
the E9 load grid: same blocking decisions, mouth-to-ear means within a
few percent (in practice float epsilon — the model replays the exact
channel arithmetic), and matching p95 jitter.  Re-validate after any
change to the voice path by widening the grid or dropping the
tolerances.
"""

from __future__ import annotations

import json

import pytest

from repro.core import sweeps
from repro.sim.sweep import run_sweep, sweep_grid

#: E9 load grid: one point per (architecture, concurrent calls).
GRID = [(arch, n) for arch in ("vgprs", "tgtr") for n in (1, 2, 3, 4, 5, 6)]

#: Relative tolerance on the mean mouth-to-ear delay, with an absolute
#: floor of 0.05 ms for the uncongested points where the mean is tiny.
M2E_RTOL = 0.05
M2E_ATOL_MS = 0.05

#: Relative tolerance on p95 jitter, with an absolute floor of 1e-3 ms
#: (the uncongested points have jitter at float-rounding level).
JITTER_RTOL = 0.10
JITTER_ATOL_MS = 1e-3


def _load_point(arch: str, num_calls: int, media: str) -> dict:
    if arch == "vgprs":
        return sweeps.vgprs_under_load(num_calls, media=media)
    return sweeps.tgtr_under_load(num_calls, media=media)


@pytest.mark.parametrize("arch,num_calls", GRID)
def test_fluid_matches_events_across_e9_grid(arch, num_calls):
    events = _load_point(arch, num_calls, "events")
    fluid = _load_point(arch, num_calls, "fluid")

    # Signalling is decoupled from media, so admission outcomes must be
    # bit-identical, not merely close.
    assert fluid["connected"] == events["connected"]
    assert fluid["blocked"] == events["blocked"]

    m2e_tol = max(M2E_RTOL * abs(events["mean_m2e_ms"]), M2E_ATOL_MS)
    assert fluid["mean_m2e_ms"] == pytest.approx(
        events["mean_m2e_ms"], abs=m2e_tol
    )

    jitter_tol = max(JITTER_RTOL * abs(events["p95_jitter_ms"]), JITTER_ATOL_MS)
    assert fluid["p95_jitter_ms"] == pytest.approx(
        events["p95_jitter_ms"], abs=jitter_tol
    )

    assert fluid["within_budget"] == pytest.approx(
        events["within_budget"], abs=0.05
    )


def test_fluid_frame_counts_match_events():
    """The observation *counts* must agree too — a fluid model that
    drops the in-flight tail of an oversaturated spurt would still pass
    a means-only comparison."""
    for arch in ("vgprs", "tgtr"):
        events = _load_point(arch, 3, "events")
        fluid = _load_point(arch, 3, "fluid")
        for name, hist in events["metrics"]["histograms"].items():
            if name.endswith(".mouth_to_ear") or name.endswith(".jitter"):
                assert fluid["metrics"]["histograms"][name]["count"] == (
                    hist["count"]
                ), name


def _fluid_snapshot_json(num_calls: int) -> str:
    result = sweeps.vgprs_under_load(num_calls, media="fluid")
    return json.dumps(result["metrics"], sort_keys=True)


def test_fluid_is_deterministic_per_seed():
    assert _fluid_snapshot_json(3) == _fluid_snapshot_json(3)


def test_fluid_sweep_merge_stable_under_jobs():
    """A parallel sweep must merge to exactly the serial result — the
    fluid model ships across process boundaries via a picklable
    module-level worker, so any hidden per-process state would show up
    here."""
    points = sweep_grid(num_calls=(1, 2))
    serial = run_sweep(sweeps.voice_quality_point, points, jobs=1)
    parallel = run_sweep(sweeps.voice_quality_point, points, jobs=2)
    for s, p in zip(serial, parallel):
        assert s.point.key == p.point.key
        assert json.dumps(s.value, sort_keys=True) == json.dumps(
            p.value, sort_keys=True
        )
