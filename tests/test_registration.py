"""Integration tests for vGPRS registration (paper §3, Figure 4)."""

import pytest

from repro.core import scenarios
from repro.core.flows import NodeNames, match_flow, registration_flow
from repro.core.network import build_vgprs_network
from repro.gprs.pdp import NSAPI_SIGNALLING
from repro.gsm.security import derive_ki

from tests.conftest import DEFAULT_IMSI, DEFAULT_MSISDN


class TestRegistrationFlow:
    def test_matches_figure4(self, vgprs):
        ms = vgprs.mss["MS1"]
        scenarios.register_ms(vgprs, ms)
        matched = match_flow(vgprs.sim.trace, registration_flow(NodeNames()))
        assert len(matched) == len(registration_flow())

    def test_step_order_is_monotone_within_chain(self, vgprs):
        ms = vgprs.mss["MS1"]
        scenarios.register_ms(vgprs, ms)
        matched = match_flow(vgprs.sim.trace, registration_flow(NodeNames()))
        # The default-chained steps must be strictly time ordered.
        times = [matched[s.step].time for s in registration_flow()]
        assert times == sorted(times)

    def test_ms_state_after_registration(self, registered):
        ms = registered.mss["MS1"]
        assert ms.registered
        assert ms.state == "idle"
        assert ms.tmsi is not None


class TestMsTablePopulation:
    def test_entry_created_with_contexts(self, registered):
        entry = registered.vmsc.ms_table.get(registered.mss["MS1"].imsi)
        assert entry is not None
        assert entry.gprs_attached
        assert entry.gk_registered
        assert entry.signalling_ready
        assert not entry.voice_ready
        assert entry.msisdn is not None

    def test_ip_address_assigned(self, registered):
        entry = registered.vmsc.ms_table.get(registered.mss["MS1"].imsi)
        assert entry.ip is not None
        # The GGSN owns the mapping and agrees.
        assert registered.ggsn.address_of(entry.imsi) == entry.ip

    def test_indexed_by_msisdn_and_ip(self, registered):
        table = registered.vmsc.ms_table
        entry = table.get(registered.mss["MS1"].imsi)
        assert table.by_msisdn(entry.msisdn) is entry
        assert table.by_ip(entry.ip) is entry

    def test_signalling_context_is_low_priority(self, registered):
        entry = registered.vmsc.ms_table.get(registered.mss["MS1"].imsi)
        # Paper step 1.3: "the QoS profile can be set to low priority".
        assert entry.pdp_state(NSAPI_SIGNALLING).qos.delay_class == 4


class TestGatekeeperSide:
    def test_alias_registered_at_gk(self, registered):
        ms = registered.mss["MS1"]
        reg = registered.gk.resolve(ms.msisdn)
        assert reg is not None
        entry = registered.vmsc.ms_table.get(ms.imsi)
        assert reg.signal_address == entry.ip

    def test_gk_never_learns_imsi(self, registered):
        """Section 6: the IMSI stays confidential to the GPRS operator."""
        ms = registered.mss["MS1"]
        reg = registered.gk.resolve(ms.msisdn)
        text = repr(reg) + repr(registered.gk.registrations)
        assert ms.imsi.digits not in text


class TestGprsSide:
    def test_sgsn_holds_mm_and_pdp_context(self, registered):
        imsi = registered.mss["MS1"].imsi
        assert imsi in registered.sgsn.mm_contexts
        assert (imsi, NSAPI_SIGNALLING) in registered.sgsn.pdp_contexts

    def test_sgsn_access_node_is_vmsc(self, registered):
        imsi = registered.mss["MS1"].imsi
        ctx = registered.sgsn.pdp_contexts[(imsi, NSAPI_SIGNALLING)]
        assert ctx.access_node == registered.vmsc.name

    def test_ggsn_context_matches(self, registered):
        imsi = registered.mss["MS1"].imsi
        ctx = registered.ggsn.pdp_contexts[(imsi, NSAPI_SIGNALLING)]
        assert ctx.sgsn_name == registered.sgsn.name


class TestVariants:
    def test_movement_registration_with_tmsi(self):
        """End of §3: location update due to MS movement uses the TMSI."""
        nw = build_vgprs_network(seed=3, num_bts=2)
        ms = nw.add_ms("MS1", DEFAULT_IMSI, DEFAULT_MSISDN,
                       use_tmsi_for_updates=True)
        nw.add_coverage(ms, nw.btss[1])
        scenarios.register_ms(nw, ms)
        first_tmsi = ms.tmsi
        since = nw.sim.now
        ms.move_to(nw.btss[1].name, lai="LAI-886-2")
        assert nw.sim.run_until_true(lambda: ms.state == "idle", timeout=30)
        # The update request on the new cell used the TMSI, not the IMSI.
        updates = nw.sim.trace.messages(
            name="Um_Location_Update_Request", since=since
        )
        assert updates and updates[0].info.get("imsi") in (None, "None")
        assert first_tmsi is not None

    def test_reregistration_is_idempotent(self, registered):
        ms = registered.mss["MS1"]
        entry = registered.vmsc.ms_table.get(ms.imsi)
        ip_before = entry.ip
        ms.move_to(registered.btss[0].name, lai="LAI-886-1")
        assert registered.sim.run_until_true(lambda: ms.state == "idle", timeout=30)
        assert registered.vmsc.ms_table.get(ms.imsi).ip == ip_before

    def test_unknown_imsi_rejected(self):
        nw = build_vgprs_network(seed=4)
        # MS whose IMSI was never provisioned in the HLR: craft manually.
        from repro.gsm.ms import MobileStation
        from repro.identities import IMSI, E164Number
        from repro.net.interfaces import Interface

        ms = MobileStation(
            nw.sim, "GHOST", imsi=IMSI("466920000009999"),
            msisdn=E164Number.parse("+886935009999"),
            ki=derive_ki("466920000009999"), serving_bts=nw.btss[0].name,
        )
        nw.net.add(ms)
        nw.net.connect(ms, nw.btss[0], Interface.UM, 0.01)
        ms.power_on()
        nw.sim.run(until=10.0)
        assert not ms.registered
        assert nw.sim.metrics.counters("VMSC.lu_failures") == {"VMSC.lu_failures": 1}

    def test_wrong_ki_fails_authentication(self):
        nw = build_vgprs_network(seed=5)
        ms = nw.add_ms("MS1", DEFAULT_IMSI, DEFAULT_MSISDN)
        ms.ki = b"\x00" * 16  # does not match the HLR's key
        ms.power_on()
        nw.sim.run(until=10.0)
        assert not ms.registered
        assert nw.sim.metrics.counters("VLR.auth_failures") == {
            "VLR.auth_failures": 1
        }

    def test_two_ms_register_independently(self):
        nw = build_vgprs_network(seed=6)
        ms1 = nw.add_ms("MS1", DEFAULT_IMSI, DEFAULT_MSISDN)
        ms2 = nw.add_ms("MS2", "466920000000002", "+886935000002")
        ms1.power_on()
        ms2.power_on()
        assert nw.sim.run_until_true(
            lambda: ms1.registered and ms2.registered, timeout=30
        )
        e1 = nw.vmsc.ms_table.get(ms1.imsi)
        e2 = nw.vmsc.ms_table.get(ms2.imsi)
        assert e1.ip != e2.ip
        assert e1.tmsi != e2.tmsi

    def test_registration_latency_scales_with_core_latency(self):
        def latency(factor):
            from repro.core.network import LatencyProfile

            nw = build_vgprs_network(
                seed=7, latencies=LatencyProfile().scaled_core(factor)
            )
            ms = nw.add_ms("MS1", DEFAULT_IMSI, DEFAULT_MSISDN)
            return scenarios.register_ms(nw, ms)

        assert latency(10.0) > latency(1.0)
