"""Tests for the sim-time series sampler and cross-worker merging."""

import copy
import io

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.obs.export import export_trace_jsonl
from repro.obs.series import (
    SeriesSampler,
    find_series,
    is_series,
    merge_series,
)
from repro.sim.kernel import Simulator


def bucket(t, counters=None, gauges=None, histograms=None):
    return {
        "t": t,
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


def series(buckets, interval=1.0, start=0.0, sim_time=None, sources=1):
    return {
        "interval": interval,
        "base_interval": interval,
        "start": start,
        "sim_time": (buckets[-1]["t"] if buckets else 0.0)
        if sim_time is None else sim_time,
        "sources": sources,
        "coarsenings": 0,
        "buckets": copy.deepcopy(buckets),
    }


def hist(samples):
    from repro.sim.metrics import summarize_samples

    return summarize_samples(list(samples))


class TestSampler:
    def test_counter_deltas_per_bucket(self):
        sim = Simulator()
        c = sim.metrics.counter("x")
        sampler = SeriesSampler(sim, interval=1.0).start()
        for t, n in ((0.25, 2), (1.5, 3), (3.5, 1)):
            sim.schedule(t, c.inc, n)
        sim.run(until=4.0)
        sampler.stop(flush=True)
        assert [b["t"] for b in sampler.buckets] == [1.0, 2.0, 3.0, 4.0]
        assert [b["counters"].get("x", 0) for b in sampler.buckets] == \
            [2, 3, 0, 1]
        # Zero deltas are omitted, not stored as 0.
        assert sampler.buckets[2]["counters"] == {}

    def test_gauge_edge_value_and_windowed_integral(self):
        sim = Simulator()
        g = sim.metrics.gauge("g")
        sampler = SeriesSampler(sim, interval=1.0).start()
        sim.schedule(0.0, g.set, 2.0)
        sim.schedule(1.5, g.set, 4.0)
        sim.run(until=2.0)
        sampler.stop(flush=True)
        b1, b2 = sampler.buckets
        assert b1["gauges"]["g"] == {"value": 2.0, "integral": 2.0}
        assert b2["gauges"]["g"]["value"] == 4.0
        # Window integral: 0.5 s at level 2 plus 0.5 s at level 4.
        assert b2["gauges"]["g"]["integral"] == pytest.approx(3.0)

    def test_histogram_windows_are_not_cumulative(self):
        sim = Simulator()
        h = sim.metrics.histogram("h")
        sampler = SeriesSampler(sim, interval=1.0).start()
        sim.schedule(0.2, h.observe, 1.0)
        sim.schedule(0.3, h.observe, 3.0)
        sim.schedule(1.2, h.observe, 10.0)
        sim.run(until=2.0)
        sampler.stop(flush=True)
        b1, b2 = sampler.buckets
        assert b1["histograms"]["h"]["count"] == 2
        assert b1["histograms"]["h"]["max"] == 3.0
        assert b2["histograms"]["h"]["count"] == 1
        assert b2["histograms"]["h"]["mean"] == 10.0

    def test_flush_closes_partial_bucket_only_once(self):
        sim = Simulator()
        c = sim.metrics.counter("x")
        sampler = SeriesSampler(sim, interval=1.0).start()
        sim.schedule(1.2, c.inc)
        sim.run(until=1.5)
        sampler.stop(flush=True)
        sampler.flush()  # idempotent: no sim time has passed since
        assert [b["t"] for b in sampler.buckets] == [1.0, 1.5]
        assert sampler.buckets[1]["counters"] == {"x": 1}

    def test_zero_event_run_yields_empty_buckets(self):
        sim = Simulator()
        sampler = SeriesSampler(sim, interval=1.0).start()
        sim.run(until=3.0)
        sampler.stop(flush=True)
        assert len(sampler.buckets) == 3
        for b in sampler.buckets:
            assert b["counters"] == {} and b["histograms"] == {}

    def test_retention_bound_coarsens_pairwise(self):
        sim = Simulator()
        c = sim.metrics.counter("x")
        sampler = SeriesSampler(sim, interval=1.0, max_points=4).start()
        for k in range(8):
            sim.schedule(k + 0.5, c.inc)
        sim.run(until=8.0)
        sampler.stop(flush=True)
        assert sampler.coarsenings == 1
        assert sampler.interval == 2.0
        assert sampler.base_interval == 1.0
        # Nothing is lost to coarsening: the deltas still sum to 8.
        assert sum(b["counters"].get("x", 0) for b in sampler.buckets) == 8
        assert [b["t"] for b in sampler.buckets] == [2.0, 4.0, 5.0, 7.0, 8.0]

    def test_constructor_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SeriesSampler(sim, interval=0.0)
        with pytest.raises(ValueError):
            SeriesSampler(sim, max_points=3)
        with pytest.raises(ValueError):
            SeriesSampler(sim, max_points=6 + 1)

    def test_armed_sampler_keeps_trace_byte_identical(self):
        def run(with_sampler):
            nw = build_vgprs_network()
            if with_sampler:
                SeriesSampler(nw.sim, interval=0.5).start()
            ms = nw.add_ms("MS1", "466920000000001", "+886935000001")
            term = nw.add_terminal("TERM1", "+886222000001",
                                   answer_delay=0.6)
            nw.sim.run(until=0.5)
            scenarios.register_ms(nw, ms)
            scenarios.call_ms_to_terminal(nw, ms, term)
            scenarios.hangup_from_ms(nw, ms)
            nw.sim.run(until=nw.sim.now + 1.0)
            buf = io.StringIO()
            export_trace_jsonl(nw.sim, buf)
            return buf.getvalue()

        assert run(False) == run(True)


class TestDetection:
    def test_is_series(self):
        assert is_series(series([bucket(1.0)]))
        assert not is_series({"interval": 1.0, "buckets": []})
        assert not is_series([1, 2])
        # A PR-2 snapshot is not a series.
        assert not is_series({"sim_time": 1.0, "counters": {},
                              "gauges": {}, "histograms": {}})

    def test_find_series_walks_sorted_keys(self):
        a = series([bucket(1.0)])
        b = series([bucket(2.0)])
        value = {"z": [1, {"metrics": a}], "a": {"nested": (b,)}}
        assert find_series(value) == [b, a]


class TestMerge:
    def test_empty_input(self):
        merged = merge_series([])
        assert merged["sources"] == 0 and merged["buckets"] == []

    def test_single_source_is_identity(self):
        s = series([bucket(1.0, counters={"x": 2})])
        merged = merge_series([s])
        assert merged == s
        assert merged is not s
        assert merged["buckets"][0] is not s["buckets"][0]

    def test_buckets_merge_by_index(self):
        a = series([bucket(1.0, counters={"x": 1}),
                    bucket(2.0, counters={"x": 2})])
        b = series([bucket(1.0, counters={"x": 10, "y": 1})])
        merged = merge_series([a, b])
        assert [bk["counters"] for bk in merged["buckets"]] == [
            {"x": 11, "y": 1}, {"x": 2}]
        assert merged["sources"] == 2
        assert merged["sim_time"] == 3.0

    def test_gauges_sum_values_and_integrals(self):
        a = series([bucket(1.0, gauges={"g": {"value": 1.0,
                                              "integral": 0.5}})])
        b = series([bucket(1.0, gauges={"g": {"value": 2.0,
                                              "integral": 1.5}})])
        g = merge_series([a, b])["buckets"][0]["gauges"]["g"]
        assert g == {"value": 3.0, "integral": 2.0}

    def test_histograms_pool(self):
        a = series([bucket(1.0, histograms={"h": hist([1.0, 2.0])})])
        b = series([bucket(1.0, histograms={"h": hist([4.0])})])
        h = merge_series([a, b])["buckets"][0]["histograms"]["h"]
        assert h["count"] == 3
        assert h["min"] == 1.0 and h["max"] == 4.0

    def test_merge_is_order_independent(self):
        parts = [
            series([bucket(1.0, counters={"x": 1},
                           histograms={"h": hist([1.0, 5.0])})]),
            series([bucket(1.0, counters={"x": 2},
                           histograms={"h": hist([2.0])})]),
            series([bucket(1.0, counters={"y": 7})]),
        ]
        forward = merge_series(parts)
        assert merge_series(parts[::-1]) == forward
        assert merge_series([parts[1], parts[2], parts[0]]) == forward

    def test_mixed_intervals_align_by_coarsening(self):
        fine = series([bucket(1.0, counters={"x": 1}),
                       bucket(2.0, counters={"x": 2})], interval=1.0)
        coarse = series([bucket(2.0, counters={"x": 10})], interval=2.0)
        merged = merge_series([fine, coarse])
        assert merged["interval"] == 2.0
        assert merged["buckets"][0]["counters"] == {"x": 13}

    def test_non_power_of_two_intervals_rejected(self):
        a = series([bucket(1.0)], interval=1.0)
        b = series([bucket(3.0)], interval=3.0)
        with pytest.raises(ValueError):
            merge_series([a, b])

    def test_degenerate_worker_merges_as_noop(self):
        # A worker whose scenario produced no events still ships empty
        # buckets; merging them must not disturb the busy worker.
        busy = series([bucket(1.0, counters={"x": 4},
                              gauges={"g": {"value": 1.0, "integral": 1.0}},
                              histograms={"h": hist([2.0])})])
        idle = series([bucket(1.0)])
        merged = merge_series([busy, idle])
        assert merged["buckets"][0]["counters"] == {"x": 4}
        assert merged["buckets"][0]["histograms"]["h"]["count"] == 1
        assert merged["sources"] == 2

    def test_empty_histogram_windows_pool_to_zero(self):
        empty = hist([])
        a = series([bucket(1.0, histograms={"h": empty})])
        b = series([bucket(1.0, histograms={"h": empty})])
        h = merge_series([a, b])["buckets"][0]["histograms"]["h"]
        assert h["count"] == 0

    def test_live_samplers_merge_like_snapshots(self):
        def sampled(seed_offset):
            sim = Simulator()
            c = sim.metrics.counter("x")
            sampler = SeriesSampler(sim, interval=1.0).start()
            sim.schedule(0.5, c.inc, 1 + seed_offset)
            sim.schedule(1.5, c.inc, 2)
            sim.run(until=2.0)
            sampler.stop(flush=True)
            return sampler.to_dict()

        merged = merge_series([sampled(0), sampled(10)])
        assert [b["counters"]["x"] for b in merged["buckets"]] == [12, 4]
