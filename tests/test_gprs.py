"""Unit/integration tests for the GPRS substrate (SGSN, GGSN, GTP)."""

import pytest

from repro.identities import IMSI, IPv4Address, TunnelId
from repro.gprs.gb import GbUnitdata
from repro.gprs.ggsn import Ggsn
from repro.gprs.pdp import (
    NSAPI_SIGNALLING,
    NSAPI_VOICE,
    PdpContext,
    QosProfile,
)
from repro.gprs.sgsn import Sgsn
from repro.net.interfaces import Interface
from repro.net.ip import IPCloud
from repro.net.iphost import IpHost
from repro.net.node import Network, Node, handles
from repro.packets.base import Raw
from repro.packets.gmm import (
    ActivatePdpContextAccept,
    ActivatePdpContextReject,
    ActivatePdpContextRequest,
    DeactivatePdpContextAccept,
    DeactivatePdpContextRequest,
    GprsAttachAccept,
    GprsAttachRequest,
    GprsDetachAccept,
    GprsDetachRequest,
    RequestPdpContextActivation,
)
from repro.packets.ip import IPv4, UDP
from repro.packets.rtp import RtpPacket
from repro.sim.kernel import Simulator

IMSI1 = IMSI("466920000000001")


class AccessStub(Node):
    """Stands in for the VMSC / BSC on the Gb interface."""

    def __init__(self, sim, name="ACCESS"):
        super().__init__(sim, name)
        self.got = []

    @handles(GprsAttachAccept, ActivatePdpContextAccept,
             ActivatePdpContextReject, DeactivatePdpContextAccept,
             GprsDetachAccept, RequestPdpContextActivation, GbUnitdata)
    def on_msg(self, msg, src, interface):
        self.got.append(msg)

    def first(self, klass):
        for m in self.got:
            if isinstance(m, klass):
                return m
        return None


@pytest.fixture
def gprs_core():
    sim = Simulator()
    net = Network(sim)
    cloud = net.add(IPCloud(sim))
    ggsn = net.add(Ggsn(sim))
    sgsn = net.add(Sgsn(sim))
    access = net.add(AccessStub(sim))
    host = net.add(IpHost(sim, "HOST", IPv4Address.parse("192.0.2.50")))
    net.connect(ggsn, cloud, Interface.GI, 0.001)
    net.connect(sgsn, ggsn, Interface.GN, 0.001)
    net.connect(access, sgsn, Interface.GB, 0.001)
    net.connect(host, cloud, Interface.IP, 0.001)
    host.attach_to_cloud()
    return sim, sgsn, ggsn, access, cloud, host


def attach_and_activate(sim, sgsn, access, nsapi=NSAPI_SIGNALLING, static=None):
    access.send(sgsn, GprsAttachRequest(imsi=IMSI1))
    sim.run()
    access.send(
        sgsn,
        ActivatePdpContextRequest(imsi=IMSI1, nsapi=nsapi,
                                  static_pdp_address=static),
    )
    sim.run()
    return access.first(ActivatePdpContextAccept)


class TestAttach:
    def test_attach_creates_mm_context(self, gprs_core):
        sim, sgsn, _, access, _, _ = gprs_core
        access.send(sgsn, GprsAttachRequest(imsi=IMSI1))
        sim.run()
        assert access.first(GprsAttachAccept) is not None
        assert IMSI1 in sgsn.mm_contexts
        assert sgsn.mm_contexts[IMSI1].access_node == "ACCESS"
        assert sgsn.mm_contexts[IMSI1].ptmsi > 0x80000000

    def test_detach_clears_everything(self, gprs_core):
        sim, sgsn, ggsn, access, _, _ = gprs_core
        attach_and_activate(sim, sgsn, access)
        access.send(sgsn, GprsDetachRequest(imsi=IMSI1))
        sim.run()
        assert access.first(GprsDetachAccept) is not None
        assert IMSI1 not in sgsn.mm_contexts
        assert sgsn.context_count() == 0

    def test_activation_without_attach_rejected(self, gprs_core):
        sim, sgsn, _, access, _, _ = gprs_core
        access.send(sgsn, ActivatePdpContextRequest(imsi=IMSI1, nsapi=5))
        sim.run()
        assert access.first(ActivatePdpContextReject) is not None


class TestPdpActivation:
    def test_dynamic_address_allocated(self, gprs_core):
        sim, sgsn, ggsn, access, _, _ = gprs_core
        accept = attach_and_activate(sim, sgsn, access)
        assert accept is not None
        assert str(accept.pdp_address).startswith("10.1.")
        assert sgsn.context_count() == 1
        assert ggsn.context_count() == 1

    def test_static_address_honoured(self, gprs_core):
        sim, sgsn, _, access, _, _ = gprs_core
        static = IPv4Address.parse("10.2.0.9")
        accept = attach_and_activate(sim, sgsn, access, static=static)
        assert accept.pdp_address == static

    def test_second_context_shares_address(self, gprs_core):
        sim, sgsn, _, access, _, _ = gprs_core
        first = attach_and_activate(sim, sgsn, access, nsapi=NSAPI_SIGNALLING)
        access.got.clear()
        access.send(
            sgsn, ActivatePdpContextRequest(imsi=IMSI1, nsapi=NSAPI_VOICE)
        )
        sim.run()
        second = access.first(ActivatePdpContextAccept)
        # Paper §2: "an IP address is associated with every MS".
        assert second.pdp_address == first.pdp_address
        assert sgsn.context_count() == 2

    def test_deactivation_removes_context(self, gprs_core):
        sim, sgsn, ggsn, access, _, _ = gprs_core
        attach_and_activate(sim, sgsn, access)
        access.send(
            sgsn, DeactivatePdpContextRequest(imsi=IMSI1, nsapi=NSAPI_SIGNALLING)
        )
        sim.run()
        assert access.first(DeactivatePdpContextAccept) is not None
        assert sgsn.context_count() == 0
        assert ggsn.context_count() == 0

    def test_deactivation_is_idempotent(self, gprs_core):
        sim, sgsn, _, access, _, _ = gprs_core
        access.send(sgsn, GprsAttachRequest(imsi=IMSI1))
        sim.run()
        access.send(
            sgsn, DeactivatePdpContextRequest(imsi=IMSI1, nsapi=NSAPI_VOICE)
        )
        sim.run()
        assert access.first(DeactivatePdpContextAccept) is not None

    def test_context_cap_rejects(self):
        sim = Simulator()
        net = Network(sim)
        cloud = net.add(IPCloud(sim))
        ggsn = net.add(Ggsn(sim))
        sgsn = net.add(Sgsn(sim, max_contexts=0))
        access = net.add(AccessStub(sim))
        net.connect(ggsn, cloud, Interface.GI, 0.001)
        net.connect(sgsn, ggsn, Interface.GN, 0.001)
        net.connect(access, sgsn, Interface.GB, 0.001)
        access.send(sgsn, GprsAttachRequest(imsi=IMSI1))
        sim.run()
        access.send(sgsn, ActivatePdpContextRequest(imsi=IMSI1, nsapi=5))
        sim.run()
        assert access.first(ActivatePdpContextReject) is not None

    def test_residency_gauge_tracks_context_seconds(self, gprs_core):
        sim, sgsn, _, access, _, _ = gprs_core
        attach_and_activate(sim, sgsn, access)
        t0 = sim.now
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert sgsn.context_residency() >= (sim.now - t0) * 0.99


class TestUserPlane:
    def test_uplink_and_downlink_tpdu(self, gprs_core):
        sim, sgsn, ggsn, access, cloud, host = gprs_core
        accept = attach_and_activate(sim, sgsn, access)
        ms_ip = accept.pdp_address
        received = []

        class RxHost(IpHost):
            @handles(Raw)
            def on_raw(self, msg, src, interface):
                received.append(msg.data)
                # Reply downlink toward the MS address.
                self.send_ip(ms_ip, Raw(data=b"pong"), dport=99)

        rx = RxHost(sim, "RX", IPv4Address.parse("192.0.2.60"))
        cloud.network.add(rx)
        cloud.network.connect(rx, cloud, Interface.IP, 0.001)
        rx.attach_to_cloud()

        frame = GbUnitdata(imsi=IMSI1, nsapi=NSAPI_SIGNALLING)
        frame.payload = (
            IPv4(src=ms_ip, dst=rx.ip) / UDP(sport=99, dport=99) / Raw(data=b"ping")
        )
        access.got.clear()
        access.send(sgsn, frame)
        sim.run()
        assert received == [b"ping"]
        downlink = access.first(GbUnitdata)
        assert downlink is not None
        assert downlink.payload.get_layer(Raw).data == b"pong"

    def test_uplink_without_context_dropped(self, gprs_core):
        sim, sgsn, _, access, _, host = gprs_core
        frame = GbUnitdata(imsi=IMSI1, nsapi=NSAPI_SIGNALLING)
        frame.payload = IPv4(src=host.ip, dst=host.ip) / Raw(data=b"")
        access.send(sgsn, frame)
        sim.run()
        assert sim.metrics.counters("SGSN.uplink_no_context") == {
            "SGSN.uplink_no_context": 1
        }

    def test_downlink_classifier_prefers_voice_context_for_rtp(self, gprs_core):
        sim, sgsn, ggsn, access, cloud, host = gprs_core
        accept = attach_and_activate(sim, sgsn, access, nsapi=NSAPI_SIGNALLING)
        access.send(sgsn, ActivatePdpContextRequest(imsi=IMSI1, nsapi=NSAPI_VOICE))
        sim.run()
        ms_ip = accept.pdp_address
        access.got.clear()
        host.send_ip(
            ms_ip,
            RtpPacket(seq=1, timestamp=0, ssrc=1, gen_time_us=0, frame=b""),
            dport=5004,
        )
        host.send_ip(ms_ip, Raw(data=b"sig"), dport=1719)
        sim.run()
        frames = [m for m in access.got if isinstance(m, GbUnitdata)]
        nsapis = sorted(f.nsapi for f in frames)
        assert nsapis == [NSAPI_SIGNALLING, NSAPI_VOICE]
        rtp_frame = next(f for f in frames if f.nsapi == NSAPI_VOICE)
        assert rtp_frame.payload.haslayer(RtpPacket)


class TestNetworkRequestedActivation:
    def test_pdu_notification_and_buffering(self, gprs_core):
        sim, sgsn, ggsn, access, cloud, host = gprs_core
        static = IPv4Address.parse("10.2.0.5")
        ggsn.provision_static(IMSI1, static, sgsn.name)
        access.send(sgsn, GprsAttachRequest(imsi=IMSI1))
        sim.run()
        # Downlink packet arrives with no context.
        host.send_ip(static, Raw(data=b"wake"), dport=1720)
        sim.run()
        req = access.first(RequestPdpContextActivation)
        assert req is not None and req.pdp_address == static
        # The MS-side obliges; the buffered packet must then arrive.
        access.got.clear()
        access.send(
            sgsn,
            ActivatePdpContextRequest(imsi=IMSI1, nsapi=req.nsapi,
                                      static_pdp_address=static),
        )
        sim.run()
        frame = access.first(GbUnitdata)
        assert frame is not None
        assert frame.payload.get_layer(Raw).data == b"wake"

    def test_unprovisioned_address_dropped(self, gprs_core):
        sim, sgsn, ggsn, access, cloud, host = gprs_core
        cloud.register(IPv4Address.parse("10.3.0.1"), ggsn)
        host.send_ip(IPv4Address.parse("10.3.0.1"), Raw(data=b"x"), dport=1)
        sim.run()
        assert sim.metrics.counters("GGSN.downlink_no_context") == {
            "GGSN.downlink_no_context": 1
        }

    def test_notification_sent_once_per_burst(self, gprs_core):
        sim, sgsn, ggsn, access, cloud, host = gprs_core
        static = IPv4Address.parse("10.2.0.6")
        ggsn.provision_static(IMSI1, static, sgsn.name)
        access.send(sgsn, GprsAttachRequest(imsi=IMSI1))
        sim.run()
        for _ in range(3):
            host.send_ip(static, Raw(data=b"x"), dport=1)
        sim.run()
        requests = [
            m for m in access.got if isinstance(m, RequestPdpContextActivation)
        ]
        assert len(requests) == 1


class TestPdpDataclasses:
    def test_qos_validation(self):
        with pytest.raises(ValueError):
            QosProfile(delay_class=0)
        with pytest.raises(ValueError):
            QosProfile(peak_kbps=0)

    def test_qos_presets(self):
        assert QosProfile.signalling().delay_class == 4
        assert QosProfile.voice().delay_class == 1

    def test_context_tid(self):
        ctx = PdpContext(imsi=IMSI1, nsapi=6)
        assert ctx.tid == TunnelId(IMSI1, 6)
        assert ctx.key() == (IMSI1, 6)
