"""Integration tests for tromboning (Figures 7-8, experiment E6)."""

import pytest

from repro.identities import E164Number, IMSI
from repro.core.baseline_gsm import build_classic_roaming_network
from repro.core.tromboning import build_vgprs_roaming_network
from repro.gsm.subscriber import SubscriberRecord

ROAMER_IMSI = "234150000000001"
ROAMER_MSISDN = "+447700900123"


@pytest.fixture
def classic():
    nw = build_classic_roaming_network(seed=21)
    x = nw.add_roamer("MS-X", ROAMER_IMSI, ROAMER_MSISDN, answer_delay=0.5)
    y = nw.add_phone("PHONE-Y", "+85221234567")
    x.power_on()
    assert nw.sim.run_until_true(lambda: x.registered, timeout=30)
    return nw, x, y


@pytest.fixture
def vgprs_roaming():
    nw = build_vgprs_roaming_network(seed=22)
    x = nw.add_roamer("MS-X", ROAMER_IMSI, ROAMER_MSISDN, answer_delay=0.5)
    nw.sim.run(until=1.0)
    x.power_on()
    assert nw.sim.run_until_true(lambda: x.registered, timeout=30)
    return nw, x, nw.phone_y


class TestClassicGsmTromboning:
    def test_roamer_registers_through_international_ss7(self, classic):
        nw, x, _ = classic
        assert nw.hlr_uk.subscriber(x.imsi).vlr_name == nw.vlr_hk.name

    def test_call_uses_exactly_two_international_trunks(self, classic):
        """Figure 7: 'the call setup results in two international calls'."""
        nw, x, y = classic
        since = nw.sim.now
        y.place_call(x.msisdn)
        assert nw.sim.run_until_true(
            lambda: y.state == "in-call" and x.state == "in-call", timeout=30
        )
        assert nw.ledger.international_count(since=since) == 2
        assert nw.ledger.total_count(since=since) == 3  # + local leg

    def test_call_path_hairpins_through_home_gmsc(self, classic):
        nw, x, y = classic
        y.place_call(x.msisdn)
        nw.sim.run_until_true(lambda: x.state == "in-call", timeout=30)
        hops = [(r.from_switch, r.to_switch) for r in nw.ledger.records]
        assert ("EX-HK", "GMSC-UK") in hops
        assert ("GMSC-UK", "EX-HK") in hops

    def test_voice_pays_double_international_latency(self, classic):
        nw, x, y = classic
        y.place_call(x.msisdn)
        nw.sim.run_until_true(
            lambda: x.state == "in-call" and y.state == "in-call", timeout=30
        )
        y.start_talking(duration=0.5)
        nw.sim.run(until=nw.sim.now + 1.0)
        m2e = nw.sim.metrics.get_histogram("MS-X.mouth_to_ear")
        # Two 70 ms international legs dominate the path.
        assert m2e.mean > 2 * 0.070

    def test_release_frees_all_trunks(self, classic):
        nw, x, y = classic
        y.place_call(x.msisdn)
        nw.sim.run_until_true(lambda: x.state == "in-call", timeout=30)
        x.hangup()
        assert nw.sim.run_until_true(
            lambda: x.state == "idle" and y.state == "idle", timeout=30
        )
        nw.sim.run(until=nw.sim.now + 1)
        assert all(r.released_at is not None for r in nw.ledger.records)


class TestVgprsTromboningElimination:
    def test_roamer_known_to_local_gatekeeper(self, vgprs_roaming):
        nw, x, _ = vgprs_roaming
        assert nw.vgprs.gk.resolve(x.msisdn) is not None

    def test_call_is_local_zero_international_trunks(self, vgprs_roaming):
        """Figure 8: the call from y to x is a local phone call."""
        nw, x, y = vgprs_roaming
        since = nw.sim.now
        y.place_call(x.msisdn)
        assert nw.sim.run_until_true(
            lambda: y.state == "in-call" and x.state == "in-call", timeout=30
        )
        assert nw.ledger.international_count(since=since) == 0
        # The only circuit is the local leg to the H.323 gateway.
        local = [r for r in nw.ledger.records if r.seized_at >= since]
        assert [r.to_switch for r in local] == ["GW-HK"]

    def test_voice_latency_beats_tromboned_path(self, vgprs_roaming):
        nw, x, y = vgprs_roaming
        y.place_call(x.msisdn)
        nw.sim.run_until_true(
            lambda: x.state == "in-call" and y.state == "in-call", timeout=30
        )
        y.start_talking(duration=0.5)
        nw.sim.run(until=nw.sim.now + 1.0)
        m2e = nw.sim.metrics.get_histogram("MS-X.mouth_to_ear")
        assert m2e.count > 0
        assert m2e.mean < 0.140  # no international leg in the path

    def test_release_cleans_up(self, vgprs_roaming):
        nw, x, y = vgprs_roaming
        y.place_call(x.msisdn)
        nw.sim.run_until_true(lambda: x.state == "in-call", timeout=30)
        x.hangup()
        assert nw.sim.run_until_true(
            lambda: x.state == "idle" and y.state == "idle", timeout=30
        )

    def test_unregistered_roamer_falls_back_to_pstn(self):
        """Figure 8: 'if x is not found in the GK, the GK will instruct y
        to connect to the international telephone network.'"""
        nw = build_vgprs_roaming_network(seed=23)
        nw.hlr_uk.add_subscriber(
            SubscriberRecord(
                imsi=IMSI("234150000000002"),
                msisdn=E164Number.parse("+447700900124"),
            )
        )
        nw.sim.run(until=1.0)
        since = nw.sim.now
        nw.phone_y.place_call(E164Number.parse("+447700900124"))
        nw.sim.run(until=nw.sim.now + 10)
        # Gateway admission missed, exchange fell back internationally.
        assert nw.sim.metrics.counters("GW-HK.gk_misses") == {"GW-HK.gk_misses": 1}
        assert nw.ledger.international_count(since=since) == 1

    def test_ms_calls_pstn_phone_through_gateway(self, vgprs_roaming):
        """Paper §4: 'the called party can also be a traditional telephone
        set in the PSTN, which is connected indirectly ... through the
        H.323 network' — the gatekeeper's gateway routing."""
        nw, x, y = vgprs_roaming
        x.place_call(y.number)
        assert nw.sim.run_until_true(
            lambda: x.state == "in-call" and y.state == "in-call", timeout=30
        )
        x.start_talking(duration=0.5)
        y.start_talking(duration=0.5)
        nw.sim.run(until=nw.sim.now + 1.5)
        assert y.frames_received == 25
        assert x.frames_received == 25
        x.hangup()
        assert nw.sim.run_until_true(
            lambda: x.state == "idle" and y.state == "idle", timeout=30
        )

    def test_gateway_fallback_never_hairpins(self, vgprs_roaming):
        """An unknown alias queried BY the gateway itself must reject, not
        resolve back to the gateway (that would loop Figure 8's fallback)."""
        nw, _, _ = vgprs_roaming
        from repro.identities import E164Number

        unknown = E164Number.parse("+447700909999")
        assert nw.vgprs.gk.resolve_or_gateway(unknown, nw.gateway.ip) is None
        resolved = nw.vgprs.gk.resolve_or_gateway(unknown, None)
        assert resolved is not None and resolved.endpoint_type == "gateway"

    def test_gsm_ms_needs_no_h323_capability(self, vgprs_roaming):
        """The roamer is a plain MobileStation — the core §2 claim."""
        from repro.gsm.ms import MobileStation

        nw, x, _ = vgprs_roaming
        assert type(x) is MobileStation
