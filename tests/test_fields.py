"""Unit tests for the packet field codecs."""

import pytest

from repro.errors import FieldError
from repro.identities import IMSI, E164Number, IPv4Address, TunnelId
from repro.packets.fields import (
    BoolField,
    ByteField,
    BytesField,
    DigitsField,
    E164Field,
    EnumField,
    ImsiField,
    IntField,
    IPv4AddressField,
    LongField,
    OptionalField,
    ShortField,
    StrField,
    TunnelIdField,
)


def roundtrip(field, value):
    encoded = field.encode(field.validate(value))
    decoded, offset = field.decode(encoded, 0)
    assert offset == len(encoded)
    return decoded


class TestUIntFields:
    @pytest.mark.parametrize(
        "field_cls,max_value",
        [(ByteField, 0xFF), (ShortField, 0xFFFF), (IntField, 0xFFFFFFFF),
         (LongField, 0xFFFFFFFFFFFFFFFF)],
    )
    def test_roundtrip_bounds(self, field_cls, max_value):
        f = field_cls("x")
        assert roundtrip(f, 0) == 0
        assert roundtrip(f, max_value) == max_value

    def test_overflow_rejected(self):
        with pytest.raises(FieldError):
            ByteField("x").validate(256)

    def test_negative_rejected(self):
        with pytest.raises(FieldError):
            ShortField("x").validate(-1)

    def test_bool_is_not_int(self):
        with pytest.raises(FieldError):
            IntField("x").validate(True)

    def test_non_int_rejected(self):
        with pytest.raises(FieldError):
            IntField("x").validate("5")

    def test_truncated_decode(self):
        with pytest.raises(FieldError):
            IntField("x").decode(b"\x00\x01", 0)


class TestBoolField:
    def test_roundtrip(self):
        assert roundtrip(BoolField("b"), True) is True
        assert roundtrip(BoolField("b"), False) is False

    def test_bad_wire_byte(self):
        with pytest.raises(FieldError):
            BoolField("b").decode(b"\x02", 0)

    def test_non_bool_rejected(self):
        with pytest.raises(FieldError):
            BoolField("b").validate(1)


class TestEnumField:
    def test_allowed_values(self):
        f = EnumField("e", values=(1, 2, 3))
        assert roundtrip(f, 2) == 2

    def test_disallowed_value(self):
        with pytest.raises(FieldError):
            EnumField("e", values=(1, 2)).validate(9)


class TestBytesStr:
    def test_bytes_roundtrip(self):
        assert roundtrip(BytesField("b"), b"\x00\x01\xff") == b"\x00\x01\xff"
        assert roundtrip(BytesField("b"), b"") == b""

    def test_bytearray_accepted(self):
        assert BytesField("b").validate(bytearray(b"ab")) == b"ab"

    def test_str_roundtrip_unicode(self):
        assert roundtrip(StrField("s"), "héllo wörld") == "héllo wörld"

    def test_truncated_body(self):
        f = BytesField("b")
        wire = f.encode(b"abcdef")
        with pytest.raises(FieldError):
            f.decode(wire[:-2], 0)

    def test_truncated_length_prefix(self):
        with pytest.raises(FieldError):
            BytesField("b").decode(b"\x00", 0)


class TestDigits:
    @pytest.mark.parametrize("digits", ["", "1", "12", "123", "0123456789" * 3])
    def test_roundtrip(self, digits):
        assert roundtrip(DigitsField("d"), digits) == digits

    def test_odd_length_padding(self):
        f = DigitsField("d")
        wire = f.encode("123")
        assert wire[0] == 3
        assert len(wire) == 1 + 2  # length byte + 2 nibble-pairs

    def test_non_digits_rejected(self):
        with pytest.raises(FieldError):
            DigitsField("d").validate("12a")
        with pytest.raises(FieldError):
            DigitsField("d").validate(123)

    def test_bad_bcd_nibble(self):
        with pytest.raises(FieldError):
            DigitsField("d").decode(b"\x02\xaa", 0)


class TestDomainFields:
    def test_imsi_roundtrip(self):
        imsi = IMSI("466920000000001")
        assert roundtrip(ImsiField("i"), imsi) == imsi

    def test_imsi_type_checked(self):
        with pytest.raises(FieldError):
            ImsiField("i").validate("466920000000001")

    def test_e164_roundtrip(self):
        n = E164Number("886", "935000001")
        assert roundtrip(E164Field("n"), n) == n

    def test_ipv4_roundtrip(self):
        a = IPv4Address.parse("203.0.113.7")
        assert roundtrip(IPv4AddressField("a"), a) == a
        assert len(IPv4AddressField("a").encode(a)) == 4

    def test_tunnel_id_roundtrip(self):
        tid = TunnelId(IMSI("466920000000001"), 6)
        assert roundtrip(TunnelIdField("t"), tid) == tid

    def test_tunnel_id_truncated_nsapi(self):
        f = TunnelIdField("t")
        wire = f.encode(TunnelId(IMSI("466920000000001"), 6))
        with pytest.raises(FieldError):
            f.decode(wire[:-1], 0)


class TestOptionalField:
    def test_none_roundtrip(self):
        f = OptionalField(IntField("x"))
        assert roundtrip(f, None) is None
        assert f.encode(None) == b"\x00"

    def test_present_roundtrip(self):
        f = OptionalField(IntField("x"))
        assert roundtrip(f, 42) == 42

    def test_validates_inner(self):
        with pytest.raises(FieldError):
            OptionalField(ByteField("x")).validate(300)

    def test_bad_presence_flag(self):
        with pytest.raises(FieldError):
            OptionalField(ByteField("x")).decode(b"\x07\x01", 0)

    def test_name_mirrors_inner(self):
        assert OptionalField(IntField("inner_name")).name == "inner_name"
