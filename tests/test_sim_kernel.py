"""Unit tests for the discrete-event kernel and event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.kernel import Simulator


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, order.append, (2,))
        q.push(1.0, order.append, (1,))
        q.push(3.0, order.append, (3,))
        while q:
            e = q.pop()
            e.callback(*e.args)
        assert order == [1, 2, 3]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        second = q.push(1.0, lambda: None)
        assert q.pop() is first
        assert q.pop() is second

    def test_priority_beats_insertion_order(self):
        q = EventQueue()
        later = q.push(1.0, lambda: None, priority=1)
        urgent = q.push(1.0, lambda: None, priority=0)
        assert q.pop() is urgent
        assert q.pop() is later

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_len_counts_live_events(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        e1.cancel()
        q.note_cancelled()
        assert len(q) == 1

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        e2 = q.push(2.0, lambda: None)
        e1.cancel()
        q.note_cancelled()
        assert q.pop() is e2

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        e1.cancel()
        q.note_cancelled()
        assert q.peek_time() == 5.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert not q
        assert q.peek_time() is None

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_advances_clock_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_stops_clock_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, 1)
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert fired == []
        sim.run()
        assert fired == [1]

    def test_run_returns_executed_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.run() == 5

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0

    def test_stop_halts_run(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(1)
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, seen.append, 2)
        sim.run()
        assert seen == [1]

    def test_cancel_prevents_callback(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, seen.append, 1)
        sim.cancel(event)
        sim.run()
        assert seen == []

    def test_cancel_none_and_double_cancel_are_noops(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending_events == 0

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [2.0]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_run_until_true_stops_on_predicate(self):
        sim = Simulator()
        state = {"x": 0}

        def bump():
            state["x"] += 1
            sim.schedule(1.0, bump)

        sim.schedule(1.0, bump)
        assert sim.run_until_true(lambda: state["x"] >= 3, timeout=100)
        assert state["x"] == 3

    def test_run_until_true_times_out(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        assert not sim.run_until_true(lambda: False, timeout=5.0)
        assert sim.now == 5.0

    def test_run_until_true_queue_drained(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert not sim.run_until_true(lambda: False, timeout=50.0)
        assert sim.now == 1.0

    def test_next_event_time(self):
        sim = Simulator()
        assert sim.next_event_time() is None
        sim.schedule(3.0, lambda: None)
        assert sim.next_event_time() == 3.0

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator(seed=seed)
            draws = []
            for _ in range(5):
                draws.append(sim.rng.uniform("test", 0, 1))
            return draws

        assert run(42) == run(42)
        assert run(42) != run(43)


class TestCancellationAccounting:
    """Regression tests: event cancellation must keep the live count
    honest through every path (direct Event.cancel, Simulator.cancel,
    the legacy note_cancelled shim)."""

    def test_direct_event_cancel_decrements_live_count(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        event.cancel()  # bypassing Simulator.cancel used to leak a count
        assert sim.pending_events == 1

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.cancel(event)
        assert sim.pending_events == 0

    def test_cancel_plus_note_cancelled_no_double_decrement(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        event.cancel()
        q.note_cancelled()  # legacy callers; must not decrement again
        assert len(q) == 1

    def test_simulator_cancel_routes_through_event(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        assert event.cancelled
        assert sim.pending_events == 0

    def test_live_count_stable_over_cancel_heavy_run(self):
        sim = Simulator()
        fired = []
        events = [sim.schedule(float(i), fired.append, i) for i in range(1, 11)]
        for event in events[::2]:
            event.cancel()
        sim.run()
        assert fired == [2, 4, 6, 8, 10]
        assert sim.pending_events == 0
