"""Unit tests for the parallel sweep runner."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.sweep import (
    SweepError,
    SweepPoint,
    resolve_jobs,
    run_sweep,
    sweep_grid,
)


def tiny_sim(seed, delay):
    """Picklable worker: a minimal seeded simulation."""
    sim = Simulator(seed=seed)
    fired = []
    sim.schedule(delay, lambda: fired.append(sim.rng.stream("w").random()))
    sim.run()
    return (sim.now, fired[0])


def boom(x):
    raise ValueError(f"bad point {x}")


class TestGrid:
    def test_cartesian_product_row_major(self):
        points = sweep_grid(seed=(0, 1), factor=(1.0, 2.0))
        assert [p.params for p in points] == [
            {"seed": 0, "factor": 1.0},
            {"seed": 0, "factor": 2.0},
            {"seed": 1, "factor": 1.0},
            {"seed": 1, "factor": 2.0},
        ]
        assert points[0].key == (("seed", 0), ("factor", 1.0))

    def test_empty_grid(self):
        assert sweep_grid() == []

    def test_point_from_params(self):
        p = SweepPoint.from_params(b=2, a=1)
        assert p.key == (("a", 1), ("b", 2))
        assert p.params == {"a": 1, "b": 2}


class TestRunSweep:
    POINTS = sweep_grid(seed=(0, 1, 2), delay=(0.5, 1.5))

    def test_serial_evaluates_in_order(self):
        results = run_sweep(tiny_sim, self.POINTS, jobs=1)
        assert [r.point for r in results] == self.POINTS
        assert all(r.value[0] == r.point.params["delay"] for r in results)

    def test_parallel_matches_serial(self):
        serial = run_sweep(tiny_sim, self.POINTS, jobs=1)
        parallel = run_sweep(tiny_sim, self.POINTS, jobs=2)
        assert [(r.point, r.value) for r in serial] == [
            (r.point, r.value) for r in parallel
        ]

    def test_single_point_stays_serial(self):
        (result,) = run_sweep(tiny_sim, sweep_grid(seed=(5,), delay=(1.0,)),
                              jobs=8)
        assert result.value[0] == 1.0

    def test_error_names_the_point(self):
        with pytest.raises(SweepError, match="x=2"):
            run_sweep(boom, sweep_grid(x=(2,)), jobs=1)

    def test_parallel_error_names_the_point(self):
        points = sweep_grid(x=(1, 2))
        with pytest.raises(SweepError, match="bad point"):
            run_sweep(boom, points, jobs=2)


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "4")
        assert resolve_jobs() == 4

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(SweepError):
            resolve_jobs(0)
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "many")
        with pytest.raises(SweepError):
            resolve_jobs()
