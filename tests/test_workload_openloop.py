"""Open-loop workload: diurnal profiles, Lewis–Shedler determinism,
avalanches, and pacing-rate independence of the offered schedule.

The serve-mode design hinges on one property: the admitted arrival
schedule is a pure function of ``(seed, profile)``.  Every random
decision is drawn at admission time from the arrival stream, so slicing
the run into pacing quanta — at any quantum — must leave the schedule,
the trace, and the final metrics byte-identical to a single batch
``run()``.
"""

import hashlib
import json

import pytest

from repro.core import scenarios
from repro.core.network import build_vgprs_network
from repro.core.workload import (
    DiurnalProfile,
    OpenLoopWorkload,
    build_population,
)
from repro.errors import SimulationError
from repro.obs.prom import render_prometheus

SEED = 17


# ----------------------------------------------------------------------
# DiurnalProfile
# ----------------------------------------------------------------------
class TestDiurnalProfile:
    def test_flat_profile_is_constant(self):
        p = DiurnalProfile.flat(120.0)
        assert p.rate_at(0.0) == 120.0
        assert p.rate_at(1e6) == 120.0
        assert p.peak_rate == 120.0

    def test_ramp_interpolates_and_clamps(self):
        p = DiurnalProfile.ramp(0.0, 100.0, duration=10.0)
        assert p.rate_at(-5.0) == 0.0
        assert p.rate_at(5.0) == pytest.approx(50.0)
        assert p.rate_at(10.0) == 100.0
        assert p.rate_at(1000.0) == 100.0  # clamped past the last knot

    def test_busy_hour_wraps_periodically(self):
        p = DiurnalProfile.busy_hour(60.0, 600.0, period=240.0)
        assert p.peak_rate == 600.0
        assert p.rate_at(120.0) == 600.0  # mid-period peak
        assert p.rate_at(120.0 + 240.0) == p.rate_at(120.0)  # wrapped
        assert p.rate_at(10.0) == 60.0

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(SimulationError):
            DiurnalProfile(points=())
        with pytest.raises(SimulationError):
            DiurnalProfile(points=((10.0, 5.0), (0.0, 5.0)))  # unsorted
        with pytest.raises(SimulationError):
            DiurnalProfile(points=((0.0, -1.0),))  # negative rate
        with pytest.raises(SimulationError):
            DiurnalProfile(points=((0.0, 0.0),))  # zero peak
        with pytest.raises(SimulationError):
            DiurnalProfile(points=((0.0, 1.0),), period=0.0)


# ----------------------------------------------------------------------
# Determinism across pacing
# ----------------------------------------------------------------------
def run_open_loop(duration=40.0, quantum=None, seed=SEED, profile=None,
                  pairs=3, calls_per_hour=720.0):
    """Drive an open-loop run to *duration* sim seconds, either as one
    batch ``run()`` (quantum=None) or through ``run_paced``; returns
    (workload, network)."""
    nw = build_vgprs_network(seed=seed)
    population = build_population(nw, size=pairs, answer_delay=0.3)
    nw.sim.run(until=0.5)
    for ms, _ in population:
        scenarios.register_ms(nw, ms)
    wl = OpenLoopWorkload(
        nw=nw,
        pairs=population,
        profile=profile or DiurnalProfile.flat(calls_per_hour),
        hold_range=(1.0, 3.0),
        talk=False,
    )
    wl.start()
    end = nw.sim.now + duration
    if quantum is None:
        nw.sim.run(until=end)
    else:
        nw.sim.run_paced(end, quantum, lambda sim: None)
    wl.stop_admitting()
    nw.sim.run(until=end + 20.0)  # drain
    wl.stop()
    return wl, nw


def digest(value) -> str:
    return hashlib.sha256(json.dumps(value).encode()).hexdigest()


class TestOpenLoopDeterminism:
    def test_schedule_is_reproducible_from_seed(self):
        first, _ = run_open_loop()
        second, _ = run_open_loop()
        assert first.arrivals  # the test is vacuous with no arrivals
        assert first.arrivals == second.arrivals

    def test_pacing_quantum_does_not_change_the_run(self):
        batch_wl, batch_nw = run_open_loop(quantum=None)
        for quantum in (0.25, 1.0, 7.3):
            paced_wl, paced_nw = run_open_loop(quantum=quantum)
            assert paced_wl.arrivals == batch_wl.arrivals
            assert paced_nw.sim.trace.triples() == batch_nw.sim.trace.triples()
            # The strongest form: the full final exposition is
            # byte-identical, clock included.
            assert (render_prometheus(paced_nw.sim.metrics.snapshot())
                    == render_prometheus(batch_nw.sim.metrics.snapshot()))

    def test_different_seeds_produce_different_schedules(self):
        a, _ = run_open_loop(seed=1)
        b, _ = run_open_loop(seed=2)
        assert a.arrivals != b.arrivals

    def test_diurnal_thinning_shapes_the_offered_load(self):
        # Quiet start, loud finish: virtually all admissions must land
        # in the loud half, whatever the seed does with individual draws.
        profile = DiurnalProfile(points=((0.0, 6.0), (30.0, 6.0),
                                         (30.001, 2400.0), (60.0, 2400.0)))
        wl, nw = run_open_loop(duration=60.0, profile=profile, pairs=4)
        assert wl.stats.offered >= 5
        loud = [t for t, *_ in wl.arrivals if t - 0.5 >= 25.0]
        assert len(loud) >= len(wl.arrivals) * 0.8

    def test_connected_calls_complete_and_drain(self):
        wl, nw = run_open_loop(duration=60.0, calls_per_hour=1200.0)
        assert wl.stats.connected >= 2
        assert wl.stats.connected == nw.sim.metrics.counter(
            "openloop.admitted"
        ).value - wl.stats.failed
        assert wl.active == 0  # drained
        assert nw.sim.metrics.gauge("openloop.active_calls").value == 0


class TestAvalanche:
    def test_avalanche_reregisters_idle_population(self):
        profile = DiurnalProfile.flat(
            6.0, avalanche_at=10.0, avalanche_spread=1.5
        )
        wl, nw = run_open_loop(duration=30.0, profile=profile, pairs=3)
        assert wl.stats.reregistrations == 3
        assert nw.sim.metrics.counter("openloop.reregistrations").value == 3
        # Every MS re-attached and is usable again.
        assert all(ms.registered for ms, _ in wl.pairs)
        # Registration latencies were recorded centrally: 3 initial
        # registrations + 3 avalanche re-attaches.
        hist = nw.sim.metrics.histogram("calls.registration_latency")
        assert hist.count == 6

    def test_avalanche_is_deterministic(self):
        profile = DiurnalProfile.flat(
            240.0, avalanche_at=8.0, avalanche_spread=2.0
        )
        runs = [run_open_loop(duration=25.0, profile=profile)
                for _ in range(2)]
        (wl_a, nw_a), (wl_b, nw_b) = runs
        assert wl_a.stats.reregistrations == wl_b.stats.reregistrations
        assert nw_a.sim.trace.triples() == nw_b.sim.trace.triples()


class TestAdmissionControl:
    def test_stop_admitting_refuses_and_counts(self):
        nw = build_vgprs_network(seed=3)
        population = build_population(nw, size=2, answer_delay=0.3)
        nw.sim.run(until=0.5)
        for ms, _ in population:
            scenarios.register_ms(nw, ms)
        wl = OpenLoopWorkload(
            nw=nw, pairs=population,
            profile=DiurnalProfile.flat(3600.0), talk=False,
        )
        wl.start()
        nw.sim.run(until=nw.sim.now + 20.0)
        assert wl.stats.offered > 0
        wl.stop_admitting()
        offered_before = wl.stats.offered
        nw.sim.run(until=nw.sim.now + 20.0)
        assert wl.stats.offered == offered_before
        assert wl.stats.refused_draining > 0
        assert wl.active == 0
        wl.stop()

    def test_all_pairs_busy_counts_blocked(self):
        nw = build_vgprs_network(seed=5)
        population = build_population(nw, size=1, answer_delay=0.3)
        nw.sim.run(until=0.5)
        for ms, _ in population:
            scenarios.register_ms(nw, ms)
        wl = OpenLoopWorkload(
            nw=nw, pairs=population,
            profile=DiurnalProfile.flat(7200.0),  # 2/s against 1 pair
            hold_range=(4.0, 8.0), talk=False,
        )
        wl.start()
        nw.sim.run(until=nw.sim.now + 30.0)
        wl.stop()
        assert wl.stats.blocked_busy > 0
        assert wl.stats.admitted >= 1
