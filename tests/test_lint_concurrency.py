"""Pass/fail fixtures for the concurrency rules: interprocedural R1/R4
(call-chain witnesses), R6 thread-boundary, R7 signal-handler, and R8
shard/process safety — plus the fingerprint-occurrence and baseline
pruning satellites."""

from __future__ import annotations

import json

from repro.lint import Baseline, LintConfig
from repro.lint.cli import lint_paths, main as lint_main
from repro.lint.rules import RULE_BITS


def lint_tree(tmp_path, files, rules=None, config=None):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return lint_paths(tmp_path, rules=rules, config=config)


def rules_of(violations):
    return sorted({v.rule for v in violations})


#: A minimal node scaffold matching the real tree's conventions: the
#: handler convention (``on_*`` on a Node subclass) makes ``on_ping`` a
#: sim-thread root.
NODES_CALLING_HELPER = """
from util import step

class Node:
    pass

class Bts(Node):
    def on_ping(self, pkt):
        return step(pkt)
"""


class TestInterproceduralR1:
    def test_clock_read_two_calls_deep_from_handler(self, tmp_path):
        """The seeded acceptance case: a host-clock read two calls
        below a handler, in a module outside the strict-clock zone.
        The syntactic analyzer provably missed it — every R1 hit here
        carries a call-chain witness, so the syntactic pass found
        nothing."""
        _, violations = lint_tree(
            tmp_path,
            {
                "nodes.py": NODES_CALLING_HELPER,
                "util.py": (
                    "import time\n"
                    "\n"
                    "def step(pkt):\n"
                    "    return stamp(pkt)\n"
                    "\n"
                    "def stamp(pkt):\n"
                    "    return time.perf_counter()\n"
                ),
            },
            rules=["R1"],
        )
        assert rules_of(violations) == ["R1"]
        [v] = violations
        assert v.file == "util.py"
        assert "via handler Bts.on_ping -> step -> stamp" in v.message
        # Proof the old, purely syntactic analyzer missed it: every
        # violation is from the interprocedural pass (has a witness).
        assert all("via" in x.message for x in violations)

    def test_strict_zone_reach_is_flagged_outside_zone(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "media/fluid.py": (
                    "from shared import now_host\n"
                    "\n"
                    "def delay():\n"
                    "    return now_host()\n"
                ),
                "shared.py": (
                    "import time\n"
                    "\n"
                    "def now_host():\n"
                    "    return time.monotonic()\n"
                ),
            },
            rules=["R1"],
        )
        assert [v.file for v in violations] == ["shared.py"]
        assert "strict-clock zone media/fluid.py:delay" in violations[0].message

    def test_unreachable_clock_read_passes(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "nodes.py": NODES_CALLING_HELPER,
                "util.py": "def step(pkt):\n    return pkt\n",
                "bench.py": (
                    "import time\n"
                    "\n"
                    "def measure():\n"
                    "    return time.perf_counter()\n"
                ),
            },
            rules=["R1"],
        )
        assert violations == []


class TestInterproceduralR4:
    def test_blocking_call_below_handler(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "nodes.py": NODES_CALLING_HELPER,
                "util.py": (
                    "import time\n"
                    "\n"
                    "def step(pkt):\n"
                    "    time.sleep(1)\n"
                ),
            },
            rules=["R4"],
        )
        assert rules_of(violations) == ["R4"]
        [v] = violations
        assert v.file == "util.py"
        assert "via handler Bts.on_ping -> step" in v.message
        assert all("via" in x.message for x in violations)

    def test_scheduled_callback_body_is_checked(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "hb.py": (
                    "def arm(sim):\n"
                    "    sim.schedule(1.0, beat)\n"
                    "\n"
                    "def beat():\n"
                    "    open('/tmp/x')\n"
                ),
            },
            rules=["R4"],
        )
        assert rules_of(violations) == ["R4"]
        assert "scheduled callback beat" in violations[0].message

    def test_blocking_allowed_path_is_skipped(self, tmp_path):
        config = LintConfig(blocking_allowed_paths=("pacer.py",))
        _, violations = lint_tree(
            tmp_path,
            {
                "nodes.py": (
                    "from pacer import pace\n"
                    "\n"
                    "class Node:\n"
                    "    pass\n"
                    "\n"
                    "class Bts(Node):\n"
                    "    def on_ping(self, pkt):\n"
                    "        pace()\n"
                ),
                "pacer.py": (
                    "import time\n"
                    "\n"
                    "def pace():\n"
                    "    time.sleep(0.1)\n"
                ),
            },
            rules=["R4"],
            config=config,
        )
        assert violations == []


SCRAPE_SCAFFOLD = """
from http.server import BaseHTTPRequestHandler

class SimState:
    def __init__(self):
        self.counter = 0

    def render(self):
        return str(self.counter)

class Handler(BaseHTTPRequestHandler):
    state: SimState
"""


class TestR6ThreadBoundary:
    def test_scrape_write_to_shared_sim_state(self, tmp_path):
        """The seeded acceptance case: a scrape-thread request handler
        mutating shared simulation state through a helper."""
        _, violations = lint_tree(
            tmp_path,
            {
                "httpd.py": SCRAPE_SCAFFOLD + (
                    "    def do_GET(self):\n"
                    "        self._bump()\n"
                    "\n"
                    "    def _bump(self):\n"
                    "        self.state.counter = 1\n"
                ),
            },
            rules=["R6"],
        )
        assert rules_of(violations) == ["R6"]
        [v] = violations
        assert "write to state.counter" in v.message
        assert "request handler Handler._bump" in v.message

    def test_read_only_render_passes(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "httpd.py": SCRAPE_SCAFFOLD + (
                    "    def do_GET(self):\n"
                    "        body = self.state.render()\n"
                    "        self.closed = True\n"
                ),
            },
            rules=["R6"],
        )
        # self.closed on the per-request handler instance is private;
        # the render call only reads.
        assert violations == []

    def test_mutating_metric_read_flagged_peek_passes(self, tmp_path):
        scaffold = (
            "from http.server import BaseHTTPRequestHandler\n"
            "\n"
            "class Gauge:\n"
            "    def integral(self):\n"
            "        return 0\n"
            "    def peek_integral(self):\n"
            "        return 0\n"
            "\n"
            "class Handler(BaseHTTPRequestHandler):\n"
            "    g: Gauge\n"
        )
        _, bad = lint_tree(
            tmp_path,
            {
                "bad/httpd.py": scaffold + (
                    "    def do_GET(self):\n"
                    "        return self.g.integral()\n"
                ),
                "good/httpd.py": scaffold.replace("Handler", "Handler2") + (
                    "    def do_GET(self):\n"
                    "        return self.g.peek_integral()\n"
                ),
            },
            rules=["R6"],
        )
        assert len(bad) == 1
        assert bad[0].file == "bad/httpd.py"
        assert ".integral()" in bad[0].message
        assert "peek_integral()" in bad[0].message

    def test_lock_on_both_sides_of_publish_boundary(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "serve.py": (
                    "from http.server import BaseHTTPRequestHandler\n"
                    "import threading\n"
                    "\n"
                    "class Shared:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "\n"
                    "def pump(shared: Shared):\n"
                    "    with shared._lock:\n"
                    "        yield 1\n"
                    "\n"
                    "class Handler(BaseHTTPRequestHandler):\n"
                    "    s: Shared\n"
                    "\n"
                    "    def do_GET(self):\n"
                    "        with self.s._lock:\n"
                    "            pass\n"
                ),
            },
            rules=["R6"],
        )
        assert rules_of(violations) == ["R6"]
        assert "both sides of the publish boundary" in violations[0].message

    def test_scrape_only_lock_passes(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "serve.py": (
                    "from http.server import BaseHTTPRequestHandler\n"
                    "import threading\n"
                    "\n"
                    "_scrape_lock = threading.Lock()\n"
                    "\n"
                    "class Handler(BaseHTTPRequestHandler):\n"
                    "    def do_GET(self):\n"
                    "        with _scrape_lock:\n"
                    "            pass\n"
                ),
            },
            rules=["R6"],
        )
        assert violations == []


SIGNAL_INSTALL = """
import signal

def install():
    signal.signal(signal.SIGINT, on_int)
"""


class TestR7SignalSafety:
    def test_flag_setting_handler_passes(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "cli.py": SIGNAL_INSTALL + (
                    "\n"
                    "class Loop:\n"
                    "    pass\n"
                    "\n"
                    "def on_int(signum, frame):\n"
                    "    Loop.stop_requested = True\n"
                ),
            },
            rules=["R7"],
        )
        assert violations == []

    def test_os_write_is_the_blessed_io(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "cli.py": SIGNAL_INSTALL + (
                    "import os\n"
                    "\n"
                    "def on_int(signum, frame):\n"
                    "    os.write(2, b'stop\\n')\n"
                ),
            },
            rules=["R7"],
        )
        assert violations == []

    def test_lock_print_sort_and_logging_flagged(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "cli.py": SIGNAL_INSTALL + (
                    "import threading\n"
                    "\n"
                    "LOCK = threading.Lock()\n"
                    "log = None\n"
                    "\n"
                    "def on_int(signum, frame):\n"
                    "    with LOCK:\n"
                    "        print('stopping')\n"
                    "    names = sorted(('a', 'b'))\n"
                    "    log.warning('bye')\n"
                ),
            },
            rules=["R7"],
        )
        assert rules_of(violations) == ["R7"]
        kinds = " | ".join(v.message for v in violations)
        assert "lock 'LOCK' acquired" in kinds
        assert "print() call" in kinds
        assert "sorted() call" in kinds
        assert ".warning() call" in kinds

    def test_reachable_helper_is_also_checked(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "cli.py": SIGNAL_INSTALL + (
                    "\n"
                    "def on_int(signum, frame):\n"
                    "    drain()\n"
                    "\n"
                    "def drain():\n"
                    "    rows = [x for x in range(3)]\n"
                ),
            },
            rules=["R7"],
        )
        assert rules_of(violations) == ["R7"]
        assert "signal handler on_int -> drain" in violations[0].message


class TestR8ShardSafety:
    def test_module_global_mutation_in_worker(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "sweep.py": (
                    "RESULTS = []\n"
                    "\n"
                    "def run_sweep(fn, points):\n"
                    "    pass\n"
                    "\n"
                    "def point(x):\n"
                    "    RESULTS.append(x)\n"
                    "    return x\n"
                    "\n"
                    "def drive():\n"
                    "    run_sweep(point, [1])\n"
                ),
            },
            rules=["R8"],
        )
        assert rules_of(violations) == ["R8"]
        assert "RESULTS" in violations[0].message
        assert "worker entry point" in violations[0].message

    def test_worker_reading_global_passes(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "sweep.py": (
                    "DEFAULTS = {'rate': 1.0}\n"
                    "\n"
                    "def run_sweep(fn, points):\n"
                    "    pass\n"
                    "\n"
                    "def point(x):\n"
                    "    return x * DEFAULTS['rate']\n"
                    "\n"
                    "def drive():\n"
                    "    run_sweep(point, [1])\n"
                ),
            },
            rules=["R8"],
        )
        assert violations == []

    def test_lambda_and_nested_submissions_flagged(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "sweep.py": (
                    "def run_sweep(fn, points):\n"
                    "    pass\n"
                    "\n"
                    "def drive(executor):\n"
                    "    run_sweep(lambda p: p, [1])\n"
                    "    def local(p):\n"
                    "        return p\n"
                    "    executor.submit(local, 2)\n"
                ),
            },
            rules=["R8"],
        )
        assert len(violations) == 2
        text = " | ".join(v.message for v in violations)
        assert "lambda submitted" in text
        assert "locally defined function 'local'" in text

    def test_partial_of_module_function_passes(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "sweep.py": (
                    "import functools\n"
                    "\n"
                    "def run_sweep(fn, points):\n"
                    "    pass\n"
                    "\n"
                    "def point(x, media=None):\n"
                    "    return x\n"
                    "\n"
                    "def drive():\n"
                    "    worker = functools.partial(point, media=3)\n"
                    "    run_sweep(worker, [1])\n"
                ),
            },
            rules=["R8"],
        )
        assert violations == []

    def test_unordered_merge_iteration_flagged(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "merge.py": (
                    "def merge_results(parts):\n"
                    "    out = []\n"
                    "    for key in set(parts):\n"
                    "        out.append(key)\n"
                    "    return out\n"
                ),
            },
            rules=["R8"],
        )
        assert rules_of(violations) == ["R8"]
        assert "merge merge_results" in violations[0].message

    def test_sorted_merge_iteration_passes(self, tmp_path):
        _, violations = lint_tree(
            tmp_path,
            {
                "merge.py": (
                    "def merge_results(parts):\n"
                    "    out = []\n"
                    "    for key in sorted(set(parts)):\n"
                    "        out.append(key)\n"
                    "    return out\n"
                ),
            },
            rules=["R8"],
        )
        assert violations == []


class TestFingerprintOccurrence:
    DOUBLE = "import time\n\ndef f():\n    time.time()\n    time.time()\n"

    def test_identical_violations_get_distinct_fingerprints(self, tmp_path):
        _, violations = lint_tree(
            tmp_path, {"a.py": self.DOUBLE}, rules=["R1"]
        )
        assert len(violations) == 2
        assert violations[0].message == violations[1].message
        assert violations[0].occurrence == 0
        assert violations[1].occurrence == 1
        assert violations[0].fingerprint != violations[1].fingerprint

    def test_baseline_covers_both_occurrences(self, tmp_path):
        _, violations = lint_tree(
            tmp_path, {"a.py": self.DOUBLE}, rules=["R1"]
        )
        baseline = Baseline.from_violations(violations)
        assert all(baseline.contains(v) for v in violations)

    def test_legacy_v1_baseline_still_matches_first_occurrence(
        self, tmp_path
    ):
        _, violations = lint_tree(
            tmp_path, {"a.py": self.DOUBLE}, rules=["R1"]
        )
        first = violations[0]
        legacy = {
            "version": 1,
            "suppressions": [
                {
                    "fingerprint": first.fingerprint,
                    "rule": first.rule,
                    "file": first.file,
                    "message": first.message,
                    "reason": "legacy entry",
                }
            ],
        }
        path = tmp_path / "legacy-baseline.json"
        path.write_text(json.dumps(legacy))
        baseline = Baseline.load(path)
        assert baseline.contains(violations[0])
        assert not baseline.contains(violations[1])


class TestBaselinePruning:
    def test_stale_entries_detected_and_pruned(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\n")
        _, violations = lint_paths(tmp_path, rules=None)
        baseline = Baseline.from_violations(violations)
        baseline.entries.append(
            {
                "fingerprint": "deadbeef0000",
                "rule": "R1",
                "file": "gone.py",
                "message": "a violation that no longer exists",
                "reason": "stale",
            }
        )
        stale = baseline.stale_entries(violations)
        assert [e["fingerprint"] for e in stale] == ["deadbeef0000"]
        pruned = baseline.pruned(violations)
        assert len(pruned.entries) == len(baseline.entries) - 1
        assert all(
            e["fingerprint"] != "deadbeef0000" for e in pruned.entries
        )

    def test_cli_prune_rewrites_file(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("import random\n")
        baseline_path = tmp_path / "lint-baseline.json"
        assert lint_main(
            [str(tmp_path), "--baseline", str(baseline_path),
             "--write-baseline"]
        ) == 0
        doc = json.loads(baseline_path.read_text())
        doc["suppressions"].append(
            {"fingerprint": "deadbeef0000", "rule": "R1",
             "file": "gone.py", "message": "gone", "reason": "stale"}
        )
        baseline_path.write_text(json.dumps(doc))
        capsys.readouterr()
        assert lint_main(
            [str(tmp_path), "--baseline", str(baseline_path),
             "--prune-baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "pruned deadbeef0000" in out
        reloaded = json.loads(baseline_path.read_text())
        assert len(reloaded["suppressions"]) == 1
        assert reloaded["version"] == 2

    def test_stale_entry_warns_but_does_not_fail(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("x = 1\n")
        baseline_path = tmp_path / "lint-baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 2,
            "suppressions": [
                {"fingerprint": "deadbeef0000", "rule": "R1",
                 "file": "gone.py", "message": "gone", "reason": "stale"}
            ],
        }))
        code = lint_main(
            [str(tmp_path), "--baseline", str(baseline_path)]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "stale baseline entry deadbeef0000" in err
        assert "--prune-baseline" in err

    def test_prune_refuses_rule_subset(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("x = 1\n")
        try:
            lint_main([str(tmp_path), "--rules", "R1",
                       "--prune-baseline"])
        except SystemExit as exc:
            assert exc.code == 2
        else:
            raise AssertionError("expected argparse error")


class TestChangedScope:
    def test_changed_filters_out_untracked_scratch_tree(self, tmp_path):
        """A scratch tree's files are not in this repo's git diff, so
        --changed reports nothing while a full run fails — the flag
        genuinely scopes by diff."""
        (tmp_path / "a.py").write_text("import random\n")
        full = lint_main([str(tmp_path), "--baseline", "none"])
        scoped = lint_main(
            [str(tmp_path), "--baseline", "none", "--changed"]
        )
        assert full == RULE_BITS["R1"]
        assert scoped == 0


class TestExitCodeBits:
    def test_new_rule_bits_are_documented_powers(self):
        assert RULE_BITS["R6"] == 64
        assert RULE_BITS["R7"] == 128
        assert RULE_BITS["R8"] == 256

    def test_r6_exit_bit(self, tmp_path):
        (tmp_path / "httpd.py").write_text(
            SCRAPE_SCAFFOLD
            + "    def do_GET(self):\n        self.state.counter = 1\n"
        )
        code = lint_main([str(tmp_path), "--baseline", "none"])
        assert code & RULE_BITS["R6"]
