"""Unit tests for the trace recorder, metrics and RNG streams."""

import pytest

from repro.errors import TraceWindowError
from repro.sim.kernel import Simulator
from repro.sim.metrics import Gauge, Histogram
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def make(self):
        clock = {"t": 0.0}
        trace = TraceRecorder(clock=lambda: clock["t"])
        return trace, clock

    def test_record_and_query(self):
        trace, clock = self.make()
        trace.record("msg", "A", "B", "Um", "Hello")
        clock["t"] = 1.0
        trace.record("msg", "B", "C", "Abis", "World")
        assert trace.count() == 2
        assert trace.count("Hello") == 1
        assert trace.triples() == [("Hello", "A", "B"), ("World", "B", "C")]

    def test_filters(self):
        trace, clock = self.make()
        trace.record("msg", "A", "B", "Um", "M1")
        clock["t"] = 2.0
        trace.record("msg", "A", "C", "A", "M1")
        assert len(trace.messages(dst="B")) == 1
        assert len(trace.messages(interface="A")) == 1
        assert len(trace.messages(since=1.0)) == 1
        assert len(trace.messages(src="A")) == 2

    def test_quiet_names_suppressed(self):
        trace, _ = self.make()
        trace.record("msg", "A", "B", "Um", "TCH_Frame")
        trace.record("msg", "A", "B", "Um", "RTP")
        trace.record("msg", "A", "B", "Um", "PCM_Frame")
        trace.record("msg", "A", "B", "Um", "Real_Message")
        assert trace.count() == 1

    def test_disabled_recorder_drops_everything(self):
        trace, _ = self.make()
        trace.enabled = False
        trace.record("msg", "A", "B", "Um", "M1")
        assert trace.count() == 0

    def test_first_last_span(self):
        trace, clock = self.make()
        trace.record("msg", "A", "B", "Um", "Start")
        clock["t"] = 5.0
        trace.record("msg", "B", "A", "Um", "End")
        clock["t"] = 7.0
        trace.record("msg", "B", "A", "Um", "End")
        assert trace.first("Start").time == 0.0
        assert trace.last("End").time == 7.0
        assert trace.span("Start", "End") == 7.0
        assert trace.span("Start", "Missing") is None

    def test_contains_subsequence(self):
        trace, _ = self.make()
        for name in ("A1", "B1", "C1"):
            trace.record("msg", "x", "y", "i", name)
        assert trace.contains_subsequence(
            [("A1", "x", "y"), ("C1", "x", "y")]
        )
        assert not trace.contains_subsequence(
            [("C1", "x", "y"), ("A1", "x", "y")]
        )

    def test_note_sanitises_reserved_keys(self):
        trace, _ = self.make()
        trace.note("NODE", "EVENT", dst="10.0.0.1", detail=5)
        entry = trace.entries[0]
        assert entry.kind == "note"
        assert entry.info["dst_"] == "10.0.0.1"
        assert entry.info["detail"] == 5

    def test_clear(self):
        trace, _ = self.make()
        trace.record("msg", "A", "B", "Um", "M1")
        trace.clear()
        assert trace.entries == []


class TestHistogram:
    def test_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == 2.5
        assert h.minimum == 1.0
        assert h.maximum == 4.0
        assert h.quantile(0.5) == 2.5
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 4.0

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.fraction_below(1.0) == 0.0
        assert h.stdev == 0.0

    def test_fraction_below(self):
        h = Histogram("h")
        for v in (1, 2, 3, 4, 5):
            h.observe(float(v))
        assert h.fraction_below(3.0) == 0.4

    def test_stdev(self):
        h = Histogram("h")
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            h.observe(v)
        assert h.stdev == pytest.approx(2.138, abs=1e-3)

    def test_single_sample_quantile(self):
        h = Histogram("h")
        h.observe(42.0)
        assert h.quantile(0.7) == 42.0


class TestGauge:
    def test_time_weighted_integral(self):
        clock = {"t": 0.0}
        g = Gauge("g", clock=lambda: clock["t"])
        g.set(2.0)
        clock["t"] = 5.0
        g.set(0.0)
        clock["t"] = 10.0
        assert g.integral() == pytest.approx(10.0)
        assert g.time_average() == pytest.approx(1.0)

    def test_inc_dec_and_peak(self):
        clock = {"t": 0.0}
        g = Gauge("g", clock=lambda: clock["t"])
        g.inc()
        g.inc()
        assert g.peak == 2.0
        g.dec()
        assert g.value == 1.0
        assert g.peak == 2.0

    def test_metrics_registry_reuses_instances(self):
        sim = Simulator()
        assert sim.metrics.counter("x") is sim.metrics.counter("x")
        assert sim.metrics.histogram("y") is sim.metrics.histogram("y")
        assert sim.metrics.gauge("z") is sim.metrics.gauge("z")

    def test_counters_prefix_filter(self):
        sim = Simulator()
        sim.metrics.counter("a.one").inc()
        sim.metrics.counter("a.two").inc(3)
        sim.metrics.counter("b.other").inc()
        assert sim.metrics.counters("a.") == {"a.one": 1, "a.two": 3}


class TestRegistryDumps:
    def test_get_accessors_do_not_create(self):
        sim = Simulator()
        assert sim.metrics.get_counter("nope") is None
        assert sim.metrics.get_histogram("nope") is None
        assert sim.metrics.get_gauge("nope") is None
        g = sim.metrics.gauge("g")
        assert sim.metrics.get_gauge("g") is g
        assert sim.metrics.get_counter("g") is None  # namespaces are per-kind

    def test_gauges_dump_settles_to_clock(self):
        clock = {"t": 0.0}
        from repro.sim.metrics import MetricsRegistry

        metrics = MetricsRegistry(clock=lambda: clock["t"])
        metrics.gauge("ctx").set(2.0)
        clock["t"] = 4.0
        dump = metrics.gauges()
        assert dump == {"ctx": {"value": 2.0, "peak": 2.0,
                                "integral": 8.0, "time_average": 2.0}}

    def test_histograms_dump_summary_keys(self):
        sim = Simulator()
        h = sim.metrics.histogram("m2e")
        for x in (1.0, 2.0, 3.0, 4.0):
            h.observe(x)
        dump = sim.metrics.histograms()
        summary = dump["m2e"]
        assert summary["count"] == 4 and summary["mean"] == 2.5
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["p50"] == pytest.approx(2.5)
        assert set(summary) == {"count", "mean", "min", "max", "stdev",
                                "p50", "p95", "p99"}

    def test_dumps_sorted_and_prefix_filtered(self):
        sim = Simulator()
        sim.metrics.gauge("b.g").set(1.0)
        sim.metrics.gauge("a.g").set(1.0)
        sim.metrics.histogram("b.h").observe(1.0)
        sim.metrics.histogram("a.h").observe(1.0)
        assert list(sim.metrics.gauges()) == ["a.g", "b.g"]
        assert list(sim.metrics.histograms("a.")) == ["a.h"]
        assert list(sim.metrics.gauges("b.")) == ["b.g"]

    def test_snapshot_shape(self):
        sim = Simulator()
        sim.metrics.counter("c").inc()
        sim.metrics.gauge("g").set(1.0)
        sim.metrics.histogram("h").observe(2.0)
        sim.schedule(1.5, lambda: None)
        sim.run(until=1.5)
        snapshot = sim.metrics.snapshot()
        assert set(snapshot) == {"sim_time", "counters", "gauges",
                                 "histograms"}
        assert snapshot["sim_time"] == 1.5
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"]["g"]["integral"] == pytest.approx(1.5)
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_quantile_cache_reused_and_invalidated(self):
        h = Histogram("h")
        for x in (3.0, 1.0, 2.0):
            h.observe(x)
        assert h._sorted is None           # built lazily
        assert h.quantile(0.5) == 2.0
        cached = h._sorted
        assert cached == [1.0, 2.0, 3.0]
        assert h.quantile(1.0) == 3.0
        assert h._sorted is cached         # reused across reads
        h.observe(0.0)
        assert h._sorted is None           # invalidated by observe()
        assert h.quantile(0.0) == 0.0


class TestRandomStreams:
    def test_streams_are_independent(self):
        streams = RandomStreams(seed=1)
        a1 = [streams.uniform("a", 0, 1) for _ in range(3)]
        streams2 = RandomStreams(seed=1)
        # Drawing from "b" first must not perturb "a".
        streams2.uniform("b", 0, 1)
        a2 = [streams2.uniform("a", 0, 1) for _ in range(3)]
        assert a1 == a2

    def test_deterministic_per_seed(self):
        assert RandomStreams(5).randint("x", 0, 100) == RandomStreams(5).randint(
            "x", 0, 100
        )

    def test_different_seeds_differ(self):
        draws1 = [RandomStreams(1).getrandbits("x", 64) for _ in range(1)]
        draws2 = [RandomStreams(2).getrandbits("x", 64) for _ in range(1)]
        assert draws1 != draws2

    def test_expovariate_positive(self):
        streams = RandomStreams(3)
        assert all(streams.expovariate("e", 2.0) > 0 for _ in range(10))


class TestTraceIndexAndLimits:
    def make(self):
        clock = {"t": 0.0}
        trace = TraceRecorder(clock=lambda: clock["t"])
        return trace, clock

    def fill(self, trace, clock, n, name="M"):
        for i in range(n):
            clock["t"] = float(i)
            trace.record("msg", "A", "B", "Um", name)

    def test_index_matches_linear_scan(self):
        trace, clock = self.make()
        for i in range(10):
            clock["t"] = float(i)
            trace.record("msg", "A", "B", "Um", f"M{i % 3}")
        for name in ("M0", "M1", "M2"):
            scan = [e for e in trace.entries if e.kind == "msg" and e.message == name]
            assert trace.messages(name=name) == scan
            assert trace.count(name) == len(scan)
            assert trace.first(name) is scan[0]
            assert trace.last(name) is scan[-1]

    def test_notes_not_in_message_index(self):
        trace, clock = self.make()
        trace.note("A", "milestone")
        trace.record("msg", "A", "B", "Um", "M")
        assert trace.count() == 1
        assert trace.first("milestone") is None

    def test_clear_resets_index(self):
        trace, clock = self.make()
        self.fill(trace, clock, 5)
        trace.clear()
        assert trace.count() == 0
        assert trace.first("M") is None
        assert trace.dropped == 0

    def test_limit_trims_oldest_half(self):
        trace, clock = self.make()
        trace.set_limit(10)
        self.fill(trace, clock, 11)
        # Exceeding the bound drops down to limit // 2 entries.
        assert len(trace.entries) == 5
        assert trace.dropped == 6
        assert trace.entries[0].time == 6.0
        # Point queries about an evicted name refuse to answer from
        # partial history instead of silently under-counting.
        with pytest.raises(TraceWindowError):
            trace.count("M")
        with pytest.raises(TraceWindowError):
            trace.first("M")
        with pytest.raises(TraceWindowError):
            trace.last("M")
        # The overall count and bulk scans still work.
        assert trace.count() == 5

    def test_window_guard_only_for_evicted_names(self):
        trace, clock = self.make()
        trace.set_limit(10)
        self.fill(trace, clock, 11)
        # A name never evicted answers normally after the trim.
        trace.record("msg", "A", "B", "Um", "Fresh")
        assert trace.count("Fresh") == 1
        assert trace.first("Fresh") is trace.entries[-1]
        # clear() starts a fresh window and lifts the guard.
        trace.clear()
        assert trace.count("M") == 0
        assert trace.first("M") is None

    def test_limit_applies_retroactively(self):
        trace, clock = self.make()
        self.fill(trace, clock, 20)
        trace.set_limit(8)
        assert len(trace.entries) == 4
        assert trace.dropped == 16

    def test_unbounded_by_default(self):
        trace, clock = self.make()
        self.fill(trace, clock, 100)
        assert trace.limit is None
        assert len(trace.entries) == 100
        assert trace.dropped == 0

    def test_limit_below_two_rejected(self):
        trace, _ = self.make()
        with pytest.raises(ValueError):
            trace.set_limit(1)

    def test_disable_reenable_keeps_index_consistent(self):
        trace, clock = self.make()
        self.fill(trace, clock, 3)
        trace.enabled = False
        self.fill(trace, clock, 3)
        trace.enabled = True
        assert trace.count("M") == 3
